// Package simp implements SatELite-style CNF preprocessing (Eén & Biere
// 2005), the simplification layer MiniSat-family solvers apply before
// search: level-0 unit propagation, clause subsumption, self-subsuming
// resolution (strengthening), and bounded variable elimination (BVE) with
// model reconstruction.
//
// Preprocessing is sound for plain satisfiability (cmd/sat -simp) and, with
// care, for MaxSAT: it must only ever see hard clauses, and any variable the
// caller keeps semantic claims about — soft-clause selectors, literals that
// will later be assumed, variables new clauses will be added over — must be
// listed in Options.Frozen so bounded variable elimination leaves it alone.
// The soft-aware preprocessing stage in internal/opt (opt.Prep) uses exactly
// that contract: it attaches a fresh frozen selector to every soft clause,
// preprocesses the hard clauses plus selector shells here, and reconstructs
// models back to the original variables afterwards. Frozen variables may
// still be fixed by level-0 unit propagation (a forced value is a proved
// fact, not a rewrite); Result.Fixed exposes those values.
//
// A Preprocessor can be reused across calls: the occurrence index, touched
// queue, and clause table are retained between runs, so repeated
// preprocessing — one call per optimizer run in a harness sweep, or per
// portfolio launch — stays allocation-light. The package-level Preprocess
// helper remains for one-shot callers.
package simp

import (
	"sort"

	"repro/internal/cnf"
)

// Options bounds the preprocessing effort.
type Options struct {
	// MaxOccurrences skips variable elimination for variables occurring
	// more often than this in either polarity. 0 means 10.
	MaxOccurrences int
	// MaxClauseGrowth aborts an elimination that would add more than this
	// many clauses beyond the ones it removes. 0 means 0 (never grow).
	MaxClauseGrowth int
	// DisableBVE turns off bounded variable elimination.
	DisableBVE bool
	// DisableSubsumption turns off subsumption and strengthening.
	DisableSubsumption bool
	// Frozen lists variables that must survive variable elimination: BVE
	// (including its pure-literal special case) never eliminates them, so
	// they still mean the same thing in the simplified formula. Callers
	// freeze every variable they will later assume, resolve on, or add
	// clauses over — MaxSAT soft-clause selectors above all. Frozen
	// variables may still be fixed by unit propagation; see Result.Fixed.
	Frozen []cnf.Var
	// Proof, when non-nil, receives every rewrite in DRAT form: derived
	// clauses (stripped, strengthened, BVE resolvents, discovered units,
	// and the empty clause on UNSAT) as additions logged before the
	// clauses that justify them are deleted, and every removal (satisfied,
	// subsumed, strengthened-away, eliminated) as a deletion. Appending
	// these records to a proof checked against the original formula makes
	// lemmas derived from the simplified formula check too — preprocessing
	// survives the checker. Clauses of the input formula itself are not
	// logged. proof.Recorder and proof.DRATWriter satisfy this interface.
	Proof ProofSink
}

// ProofSink is the subset of DRAT logging the preprocessor needs; literal
// slices are only valid for the duration of the call.
type ProofSink interface {
	Learn(lits []cnf.Lit)
	Delete(lits []cnf.Lit)
}

// Result carries the simplified formula and everything needed to lift a
// model of the simplified formula back to the original variables. A Result
// owns all of its data: it stays valid after the Preprocessor that produced
// it is reused for another formula.
type Result struct {
	// Formula is the simplified CNF over the same variable space (eliminated
	// and fixed variables simply no longer occur).
	Formula *cnf.Formula
	// Unsat reports that preprocessing derived the empty clause.
	Unsat bool

	fixed      []int8       // 0 unknown, 1 true, -1 false (level-0 units)
	elimStack  []elimRecord // reverse-order reconstruction data
	numVars    int
	eliminated []bool
}

type elimRecord struct {
	v       cnf.Var
	clauses []cnf.Clause // original clauses containing v or ¬v
}

// Eliminated reports whether v was removed by variable elimination.
func (r *Result) Eliminated(v cnf.Var) bool {
	return int(v) < len(r.eliminated) && r.eliminated[v]
}

// Fixed reports the value forced on v by level-0 unit propagation, and
// whether v was fixed at all. Frozen variables are never eliminated but may
// be fixed; MaxSAT callers use this to fold softs whose selector was forced
// (a selector forced false proves the soft clause unsatisfiable under the
// hard clauses, so its weight is always paid).
func (r *Result) Fixed(v cnf.Var) (value bool, fixed bool) {
	if int(v) >= len(r.fixed) || r.fixed[v] == 0 {
		return false, false
	}
	return r.fixed[v] == 1, true
}

// Reconstruct extends a model of the simplified formula to a model of the
// original formula: fixed variables take their forced values, eliminated
// variables are assigned in reverse elimination order so that their saved
// clauses are satisfied. The input is not modified.
func (r *Result) Reconstruct(model cnf.Assignment) cnf.Assignment {
	out := make(cnf.Assignment, r.numVars)
	copy(out, model)
	for v := 0; v < r.numVars && v < len(r.fixed); v++ {
		if r.fixed[v] == 1 {
			out[v] = true
		} else if r.fixed[v] == -1 {
			out[v] = false
		}
	}
	for i := len(r.elimStack) - 1; i >= 0; i-- {
		rec := r.elimStack[i]
		out[rec.v] = false
		for _, c := range rec.clauses {
			if !out.Satisfies(c) {
				// All other literals are false; the clause's v-literal
				// dictates the polarity.
				for _, l := range c {
					if l.Var() == rec.v {
						out[rec.v] = !l.Sign()
						break
					}
				}
			}
		}
	}
	return out
}

// Preprocessor holds the occurrence-indexed clause database plus the
// reusable scratch buffers (occurrence lists, touched queue, unit queue,
// frozen marks). The zero value is ready to use; reusing one instance
// across Preprocess calls avoids reallocating the per-literal index each
// time. A Preprocessor is not safe for concurrent use.
type Preprocessor struct {
	opts    Options
	clauses []cnf.Clause // nil entries are deleted
	occ     [][]int32    // per literal: clause indices (may contain stale ids)
	fixed   []int8       // per call; ownership passes to the Result
	frozen  []bool
	units   []cnf.Lit
	result  *Result

	touchedStamp []uint32 // touchedStamp[v] == stamp ⇔ v queued for BVE
	touchedList  []cnf.Var
	stamp        uint32

	occScratch []int32 // reused snapshot of an occurrence list under iteration
}

// NewPreprocessor returns an empty reusable preprocessor.
func NewPreprocessor() *Preprocessor { return &Preprocessor{} }

// Preprocess simplifies f (which is not modified) and returns the result.
// One-shot convenience over Preprocessor.Preprocess.
func Preprocess(f *cnf.Formula, opts Options) *Result {
	return NewPreprocessor().Preprocess(f, opts)
}

// Preprocess simplifies f (which is not modified) and returns the result.
// The returned Result owns its data and remains valid across further calls.
func (p *Preprocessor) Preprocess(f *cnf.Formula, opts Options) *Result {
	if opts.MaxOccurrences == 0 {
		opts.MaxOccurrences = 10
	}
	n := f.NumVars
	p.reset(n, opts)
	for _, c := range f.Clauses {
		norm, taut := c.Clone().Normalize()
		if taut {
			continue
		}
		switch len(norm) {
		case 0:
			p.result.Unsat = true
		case 1:
			p.units = append(p.units, norm[0])
		default:
			p.addClause(norm)
		}
	}
	if !p.result.Unsat {
		p.run()
	}
	out := cnf.NewFormula(n)
	if p.result.Unsat {
		out.Clauses = append(out.Clauses, cnf.Clause{})
	} else {
		for _, c := range p.clauses {
			if c != nil {
				// Clause backing arrays are allocated per call, so the
				// result can own them without copying.
				out.Clauses = append(out.Clauses, c)
			}
		}
	}
	p.result.Formula = out
	p.result.fixed = p.fixed
	p.fixed = nil // owned by the result now
	return p.result
}

// reset prepares the reusable buffers for a formula over n variables.
func (p *Preprocessor) reset(n int, opts Options) {
	p.opts = opts
	p.clauses = p.clauses[:0]
	p.units = p.units[:0]
	p.touchedList = p.touchedList[:0]
	p.stamp++
	if cap(p.occ) >= 2*n {
		p.occ = p.occ[:2*n]
		for i := range p.occ {
			p.occ[i] = p.occ[i][:0]
		}
	} else {
		old := p.occ[:cap(p.occ)]
		for i := range old {
			old[i] = old[i][:0]
		}
		p.occ = append(old, make([][]int32, 2*n-len(old))...)
	}
	if cap(p.touchedStamp) >= n {
		p.touchedStamp = p.touchedStamp[:n]
	} else {
		p.touchedStamp = make([]uint32, n)
		p.stamp = 1
	}
	if cap(p.frozen) >= n {
		p.frozen = p.frozen[:n]
		for i := range p.frozen {
			p.frozen[i] = false
		}
	} else {
		p.frozen = make([]bool, n)
	}
	for _, v := range opts.Frozen {
		if int(v) < n {
			p.frozen[v] = true
		}
	}
	p.fixed = make([]int8, n)
	p.result = &Result{
		numVars:    n,
		eliminated: make([]bool, n),
	}
}

func (p *Preprocessor) touch(v cnf.Var) {
	if p.touchedStamp[v] != p.stamp {
		p.touchedStamp[v] = p.stamp
		p.touchedList = append(p.touchedList, v)
	}
}

func (p *Preprocessor) addClause(c cnf.Clause) int32 {
	id := int32(len(p.clauses))
	p.clauses = append(p.clauses, c)
	for _, l := range c {
		p.occ[l] = append(p.occ[l], id)
		p.touch(l.Var())
	}
	return id
}

func (p *Preprocessor) removeClause(id int32) {
	p.clauses[id] = nil // occurrence lists are cleaned lazily
}

func (p *Preprocessor) proofLearn(c cnf.Clause) {
	if p.opts.Proof != nil {
		p.opts.Proof.Learn(c)
	}
}

// proofRemoveClause logs the deletion of a live clause and removes it.
func (p *Preprocessor) proofRemoveClause(id int32) {
	if p.opts.Proof != nil {
		p.opts.Proof.Delete(p.clauses[id])
	}
	p.removeClause(id)
}

// occsOf returns the live clause ids containing l, compacting the list.
// Clauses are immutable once added (strengthening and stripping create new
// ids), so a non-nil entry still contains l — no literal scan is needed.
func (p *Preprocessor) occsOf(l cnf.Lit) []int32 {
	list := p.occ[l]
	j := 0
	for _, id := range list {
		if p.clauses[id] != nil {
			list[j] = id
			j++
		}
	}
	p.occ[l] = list[:j]
	return p.occ[l]
}

func (p *Preprocessor) run() {
	for {
		if !p.propagateUnits() {
			return
		}
		changed := false
		if !p.opts.DisableSubsumption {
			if p.subsumptionPass() {
				changed = true
			}
			if p.result.Unsat || len(p.units) > 0 {
				continue
			}
		}
		if !p.opts.DisableBVE {
			if p.eliminationPass() {
				changed = true
			}
			if p.result.Unsat || len(p.units) > 0 {
				continue
			}
		}
		if !changed {
			return
		}
	}
}

// propagateUnits applies queued level-0 units; it reports false on UNSAT.
func (p *Preprocessor) propagateUnits() bool {
	for len(p.units) > 0 {
		l := p.units[len(p.units)-1]
		p.units = p.units[:len(p.units)-1]
		v := l.Var()
		want := int8(1)
		if l.Sign() {
			want = -1
		}
		switch p.fixed[v] {
		case want:
			continue
		case -want:
			p.result.Unsat = true
			p.proofLearn(nil) // complementary units are both on record
			return false
		}
		p.fixed[v] = want
		// Satisfied clauses disappear.
		for _, id := range p.occsOf(l) {
			p.proofRemoveClause(id)
		}
		// Falsified literals are stripped.
		for _, id := range p.occsOf(l.Neg()) {
			c := p.clauses[id]
			stripped := make(cnf.Clause, 0, len(c)-1)
			for _, x := range c {
				if x != l.Neg() {
					stripped = append(stripped, x)
				}
			}
			p.proofLearn(stripped)
			p.proofRemoveClause(id)
			switch len(stripped) {
			case 0:
				p.result.Unsat = true
				return false
			case 1:
				p.units = append(p.units, stripped[0])
			default:
				p.addClause(stripped)
			}
		}
	}
	return true
}

// subsumptionPass removes subsumed clauses and applies self-subsuming
// resolution; it reports whether anything changed.
func (p *Preprocessor) subsumptionPass() bool {
	changed := false
	for id := int32(0); id < int32(len(p.clauses)); id++ {
		c := p.clauses[id]
		if c == nil {
			continue
		}
		// Find candidates through the least-occurring literal of c.
		best := c[0]
		for _, l := range c[1:] {
			if len(p.occ[l]) < len(p.occ[best]) {
				best = l
			}
		}
		for _, did := range p.occSnapshot(best) {
			if did == id {
				continue
			}
			d := p.clauses[did]
			if d == nil || len(d) < len(c) {
				continue
			}
			if subsumes(c, d) {
				p.proofRemoveClause(did)
				changed = true
			}
		}
		// Self-subsuming resolution: for each literal l of c, if c with l
		// negated subsumes some d, then l.Neg() can be removed from d.
		for _, l := range c {
			for _, did := range p.occSnapshot(l.Neg()) {
				if did == id {
					continue
				}
				d := p.clauses[did]
				if d == nil || len(d) < len(c) || !subsumesExcept(c, d, l) {
					continue
				}
				strengthened := make(cnf.Clause, 0, len(d)-1)
				for _, x := range d {
					if x != l.Neg() {
						strengthened = append(strengthened, x)
					}
				}
				p.proofLearn(strengthened)
				p.proofRemoveClause(did)
				changed = true
				switch len(strengthened) {
				case 0:
					p.result.Unsat = true
					return true
				case 1:
					p.units = append(p.units, strengthened[0])
				default:
					p.addClause(strengthened)
				}
			}
		}
	}
	return changed
}

// occSnapshot copies the live occurrence list of l into a reused scratch
// buffer, so the caller can add and remove clauses (which mutate the
// underlying lists) while iterating.
func (p *Preprocessor) occSnapshot(l cnf.Lit) []int32 {
	p.occScratch = append(p.occScratch[:0], p.occsOf(l)...)
	return p.occScratch
}

// subsumes reports c ⊆ d for normalized (sorted) clauses.
func subsumes(c, d cnf.Clause) bool {
	if len(c) > len(d) {
		return false
	}
	i := 0
	for _, l := range d {
		if i < len(c) && c[i] == l {
			i++
		}
	}
	return i == len(c)
}

// subsumesExcept reports that c with its literal l flipped subsumes d, i.e.
// (c \ {l}) ⊆ d and l.Neg() ∈ d — the self-subsuming-resolution condition
// allowing l.Neg() to be stripped from d. Both clauses are normalized; the
// flipped literal is matched out of order so no clone/re-sort is needed.
func subsumesExcept(c, d cnf.Clause, l cnf.Lit) bool {
	if !d.Has(l.Neg()) {
		return false
	}
	i := 0
	for _, x := range d {
		if i < len(c) && c[i] == l {
			i++ // l is covered by l.Neg() ∈ d, not by matching in d
		}
		if i < len(c) && c[i] == x {
			i++
		}
	}
	if i < len(c) && c[i] == l {
		i++
	}
	return i == len(c)
}

// eliminationPass tries bounded variable elimination on low-occurrence
// variables; it reports whether anything changed. Frozen variables are
// never candidates.
func (p *Preprocessor) eliminationPass() bool {
	changed := false
	vars := append([]cnf.Var{}, p.touchedList...)
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	p.touchedList = p.touchedList[:0]
	p.stamp++
	for _, v := range vars {
		if p.fixed[v] != 0 || p.result.eliminated[v] || p.frozen[v] {
			continue
		}
		// Aliasing the live lists is safe: the commit below only marks
		// clauses dead (lazy deletion) and resolvents never contain v, so
		// neither list mutates while it is iterated.
		pos := p.occsOf(cnf.PosLit(v))
		neg := p.occsOf(cnf.NegLit(v))
		if len(pos) == 0 && len(neg) == 0 {
			continue
		}
		if len(pos) > p.opts.MaxOccurrences || len(neg) > p.opts.MaxOccurrences {
			continue
		}
		// A pure literal eliminates trivially (no resolvents).
		var resolvents []cnf.Clause
		ok := true
		if len(pos) > 0 && len(neg) > 0 {
			budget := len(pos) + len(neg) + p.opts.MaxClauseGrowth
			for _, pi := range pos {
				for _, ni := range neg {
					r, taut := resolve(p.clauses[pi], p.clauses[ni], v)
					if taut {
						continue
					}
					resolvents = append(resolvents, r)
					if len(resolvents) > budget {
						ok = false
						break
					}
				}
				if !ok {
					break
				}
			}
		}
		if !ok {
			continue
		}
		// Commit: save original clauses for reconstruction, swap in
		// resolvents. Resolvent additions are logged first — their RUP
		// checks resolve against the originals, which must still be
		// active when the record is replayed.
		for _, r := range resolvents {
			p.proofLearn(r)
		}
		rec := elimRecord{v: v}
		for _, id := range pos {
			rec.clauses = append(rec.clauses, p.clauses[id].Clone())
			p.proofRemoveClause(id)
		}
		for _, id := range neg {
			rec.clauses = append(rec.clauses, p.clauses[id].Clone())
			p.proofRemoveClause(id)
		}
		p.result.elimStack = append(p.result.elimStack, rec)
		p.result.eliminated[v] = true
		for _, r := range resolvents {
			switch len(r) {
			case 0:
				p.result.Unsat = true
				return true
			case 1:
				p.units = append(p.units, r[0])
			default:
				p.addClause(r)
			}
		}
		changed = true
		if len(p.units) > 0 {
			return true
		}
	}
	return changed
}

// resolve returns the resolvent of c (containing v) and d (containing ¬v),
// normalized, with a tautology flag.
func resolve(c, d cnf.Clause, v cnf.Var) (cnf.Clause, bool) {
	out := make(cnf.Clause, 0, len(c)+len(d)-2)
	for _, l := range c {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	for _, l := range d {
		if l.Var() != v {
			out = append(out, l)
		}
	}
	return out.Normalize()
}
