package simp

import (
	"math/rand"
	"testing"

	"repro/internal/brute"
	"repro/internal/cnf"
	"repro/internal/sat"
)

func lit(i int) cnf.Lit { return cnf.FromDIMACS(i) }

func TestUnitPropagationFixesVariables(t *testing.T) {
	f := cnf.NewFormula(3)
	f.AddClause(lit(1))
	f.AddClause(lit(-1), lit(2))
	f.AddClause(lit(-2), lit(3))
	r := Preprocess(f, Options{})
	if r.Unsat {
		t.Fatal("satisfiable formula reported unsat")
	}
	if r.Formula.NumClauses() != 0 {
		t.Fatalf("chain of units should simplify away, got %v", r.Formula.Clauses)
	}
	m := r.Reconstruct(make(cnf.Assignment, 3))
	if !m[0] || !m[1] || !m[2] {
		t.Fatalf("reconstruction lost forced values: %v", m)
	}
	if !f.Eval(m) {
		t.Fatal("reconstructed model does not satisfy original")
	}
}

func TestUnsatDetection(t *testing.T) {
	f := cnf.NewFormula(1)
	f.AddClause(lit(1))
	f.AddClause(lit(-1))
	r := Preprocess(f, Options{})
	if !r.Unsat {
		t.Fatal("contradiction not detected")
	}
	if r.Formula.NumClauses() != 1 || len(r.Formula.Clauses[0]) != 0 {
		t.Fatal("unsat result should carry the empty clause")
	}
}

func TestSubsumptionRemovesSuperset(t *testing.T) {
	f := cnf.NewFormula(3)
	f.AddClause(lit(1), lit(2))
	f.AddClause(lit(1), lit(2), lit(3))
	r := Preprocess(f, Options{DisableBVE: true})
	if got := r.Formula.NumClauses(); got != 1 {
		t.Fatalf("subsumed clause kept: %v", r.Formula.Clauses)
	}
}

func TestSelfSubsumingResolution(t *testing.T) {
	// (a ∨ b) and (¬a ∨ b ∨ c): strengthen the second to (b ∨ c).
	f := cnf.NewFormula(3)
	f.AddClause(lit(1), lit(2))
	f.AddClause(lit(-1), lit(2), lit(3))
	r := Preprocess(f, Options{DisableBVE: true})
	found := false
	for _, c := range r.Formula.Clauses {
		if len(c) == 2 && c.Has(lit(2)) && c.Has(lit(3)) {
			found = true
		}
		if c.Has(lit(-1)) {
			t.Fatalf("¬a survived strengthening: %v", r.Formula.Clauses)
		}
	}
	if !found {
		t.Fatalf("strengthened clause missing: %v", r.Formula.Clauses)
	}
}

func TestBVEEliminatesLowOccurrenceVar(t *testing.T) {
	// v appears once positively and once negatively; elimination replaces
	// the two clauses with one resolvent.
	f := cnf.NewFormula(3)
	f.AddClause(lit(1), lit(2))
	f.AddClause(lit(-1), lit(3))
	r := Preprocess(f, Options{DisableSubsumption: true})
	if !r.Eliminated(0) {
		t.Fatalf("variable 1 not eliminated: %v", r.Formula.Clauses)
	}
	for _, c := range r.Formula.Clauses {
		if c.Has(lit(1)) || c.Has(lit(-1)) {
			t.Fatalf("eliminated variable still occurs: %v", r.Formula.Clauses)
		}
	}
}

func TestPureLiteralElimination(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(lit(1), lit(2))
	f.AddClause(lit(1), lit(-2))
	r := Preprocess(f, Options{DisableSubsumption: true})
	if !r.Eliminated(0) {
		t.Fatal("pure literal not eliminated")
	}
	if r.Formula.NumClauses() != 0 {
		t.Fatalf("pure-literal clauses should vanish, got %v", r.Formula.Clauses)
	}
	m := r.Reconstruct(make(cnf.Assignment, 2))
	if !f.Eval(m) {
		t.Fatal("reconstructed model does not satisfy original")
	}
}

// TestEquisatisfiableAndReconstructible is the central property: for random
// formulas, preprocessing preserves satisfiability, and solving the
// simplified formula plus reconstruction yields a model of the original.
func TestEquisatisfiableAndReconstructible(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for iter := 0; iter < 300; iter++ {
		vars := 3 + rng.Intn(10)
		f := cnf.NewFormula(vars)
		for i := 0; i < 3+rng.Intn(30); i++ {
			width := 1 + rng.Intn(3)
			var c []cnf.Lit
			for j := 0; j < width; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(vars)), rng.Intn(2) == 0))
			}
			f.AddClause(c...)
		}
		wantSat, _ := brute.SAT(f)
		r := Preprocess(f, Options{})
		if r.Unsat {
			if wantSat {
				t.Fatalf("iter %d: preprocessing claims unsat on sat formula\n%v",
					iter, f.Clauses)
			}
			continue
		}
		s := sat.New()
		s.EnsureVars(vars)
		s.AddFormula(r.Formula)
		st := s.Solve()
		if (st == sat.Sat) != wantSat {
			t.Fatalf("iter %d: simplified verdict %v, original sat=%v", iter, st, wantSat)
		}
		if st == sat.Sat {
			m := r.Reconstruct(s.Model()[:vars])
			if !f.Eval(m) {
				t.Fatalf("iter %d: reconstructed model fails original formula\norig: %v\nsimplified: %v",
					iter, f.Clauses, r.Formula.Clauses)
			}
		}
	}
}

func TestPreprocessShrinksCircuitCNF(t *testing.T) {
	// A Tseitin-encoded miter has many functionally-defined variables; BVE
	// should remove a meaningful fraction.
	f := cnf.NewFormula(4)
	// Chain of definitions: y1 = x1∨x2 (as 3 clauses), used once.
	f.AddClause(lit(5), lit(-1))
	f.AddClause(lit(5), lit(-2))
	f.AddClause(lit(-5), lit(1), lit(2))
	f.AddClause(lit(-5), lit(3))
	f.AddClause(lit(4), lit(3))
	before := f.NumClauses()
	r := Preprocess(f, Options{})
	if r.Formula.NumClauses() >= before {
		t.Fatalf("no shrink: %d -> %d", before, r.Formula.NumClauses())
	}
}

func TestPreprocessDoesNotModifyInput(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(lit(1), lit(2))
	f.AddClause(lit(-1), lit(2))
	clone := f.Clone()
	Preprocess(f, Options{})
	if f.NumClauses() != clone.NumClauses() {
		t.Fatal("input clause count changed")
	}
	for i := range f.Clauses {
		if len(f.Clauses[i]) != len(clone.Clauses[i]) {
			t.Fatal("input clause changed")
		}
	}
}

func TestTautologyDropped(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(lit(1), lit(-1))
	f.AddClause(lit(2))
	r := Preprocess(f, Options{})
	if r.Unsat || r.Formula.NumClauses() != 0 {
		t.Fatalf("tautology+unit should vanish, got %v", r.Formula.Clauses)
	}
}

func TestEmptyFormula(t *testing.T) {
	f := cnf.NewFormula(3)
	r := Preprocess(f, Options{})
	if r.Unsat || r.Formula.NumClauses() != 0 {
		t.Fatal("empty formula mishandled")
	}
	m := r.Reconstruct(make(cnf.Assignment, 3))
	if len(m) != 3 {
		t.Fatal("reconstruction length")
	}
}
