package simp

import (
	"math/rand"
	"testing"

	"repro/internal/brute"
	"repro/internal/cnf"
	"repro/internal/sat"
)

func lit(i int) cnf.Lit { return cnf.FromDIMACS(i) }

func TestUnitPropagationFixesVariables(t *testing.T) {
	f := cnf.NewFormula(3)
	f.AddClause(lit(1))
	f.AddClause(lit(-1), lit(2))
	f.AddClause(lit(-2), lit(3))
	r := Preprocess(f, Options{})
	if r.Unsat {
		t.Fatal("satisfiable formula reported unsat")
	}
	if r.Formula.NumClauses() != 0 {
		t.Fatalf("chain of units should simplify away, got %v", r.Formula.Clauses)
	}
	m := r.Reconstruct(make(cnf.Assignment, 3))
	if !m[0] || !m[1] || !m[2] {
		t.Fatalf("reconstruction lost forced values: %v", m)
	}
	if !f.Eval(m) {
		t.Fatal("reconstructed model does not satisfy original")
	}
}

func TestUnsatDetection(t *testing.T) {
	f := cnf.NewFormula(1)
	f.AddClause(lit(1))
	f.AddClause(lit(-1))
	r := Preprocess(f, Options{})
	if !r.Unsat {
		t.Fatal("contradiction not detected")
	}
	if r.Formula.NumClauses() != 1 || len(r.Formula.Clauses[0]) != 0 {
		t.Fatal("unsat result should carry the empty clause")
	}
}

func TestSubsumptionRemovesSuperset(t *testing.T) {
	f := cnf.NewFormula(3)
	f.AddClause(lit(1), lit(2))
	f.AddClause(lit(1), lit(2), lit(3))
	r := Preprocess(f, Options{DisableBVE: true})
	if got := r.Formula.NumClauses(); got != 1 {
		t.Fatalf("subsumed clause kept: %v", r.Formula.Clauses)
	}
}

func TestSelfSubsumingResolution(t *testing.T) {
	// (a ∨ b) and (¬a ∨ b ∨ c): strengthen the second to (b ∨ c).
	f := cnf.NewFormula(3)
	f.AddClause(lit(1), lit(2))
	f.AddClause(lit(-1), lit(2), lit(3))
	r := Preprocess(f, Options{DisableBVE: true})
	found := false
	for _, c := range r.Formula.Clauses {
		if len(c) == 2 && c.Has(lit(2)) && c.Has(lit(3)) {
			found = true
		}
		if c.Has(lit(-1)) {
			t.Fatalf("¬a survived strengthening: %v", r.Formula.Clauses)
		}
	}
	if !found {
		t.Fatalf("strengthened clause missing: %v", r.Formula.Clauses)
	}
}

func TestBVEEliminatesLowOccurrenceVar(t *testing.T) {
	// v appears once positively and once negatively; elimination replaces
	// the two clauses with one resolvent.
	f := cnf.NewFormula(3)
	f.AddClause(lit(1), lit(2))
	f.AddClause(lit(-1), lit(3))
	r := Preprocess(f, Options{DisableSubsumption: true})
	if !r.Eliminated(0) {
		t.Fatalf("variable 1 not eliminated: %v", r.Formula.Clauses)
	}
	for _, c := range r.Formula.Clauses {
		if c.Has(lit(1)) || c.Has(lit(-1)) {
			t.Fatalf("eliminated variable still occurs: %v", r.Formula.Clauses)
		}
	}
}

func TestPureLiteralElimination(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(lit(1), lit(2))
	f.AddClause(lit(1), lit(-2))
	r := Preprocess(f, Options{DisableSubsumption: true})
	if !r.Eliminated(0) {
		t.Fatal("pure literal not eliminated")
	}
	if r.Formula.NumClauses() != 0 {
		t.Fatalf("pure-literal clauses should vanish, got %v", r.Formula.Clauses)
	}
	m := r.Reconstruct(make(cnf.Assignment, 2))
	if !f.Eval(m) {
		t.Fatal("reconstructed model does not satisfy original")
	}
}

// TestEquisatisfiableAndReconstructible is the central property: for random
// formulas, preprocessing preserves satisfiability, and solving the
// simplified formula plus reconstruction yields a model of the original.
func TestEquisatisfiableAndReconstructible(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for iter := 0; iter < 300; iter++ {
		vars := 3 + rng.Intn(10)
		f := cnf.NewFormula(vars)
		for i := 0; i < 3+rng.Intn(30); i++ {
			width := 1 + rng.Intn(3)
			var c []cnf.Lit
			for j := 0; j < width; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(vars)), rng.Intn(2) == 0))
			}
			f.AddClause(c...)
		}
		wantSat, _ := brute.SAT(f)
		r := Preprocess(f, Options{})
		if r.Unsat {
			if wantSat {
				t.Fatalf("iter %d: preprocessing claims unsat on sat formula\n%v",
					iter, f.Clauses)
			}
			continue
		}
		s := sat.New()
		s.EnsureVars(vars)
		s.AddFormula(r.Formula)
		st := s.Solve()
		if (st == sat.Sat) != wantSat {
			t.Fatalf("iter %d: simplified verdict %v, original sat=%v", iter, st, wantSat)
		}
		if st == sat.Sat {
			m := r.Reconstruct(s.Model()[:vars])
			if !f.Eval(m) {
				t.Fatalf("iter %d: reconstructed model fails original formula\norig: %v\nsimplified: %v",
					iter, f.Clauses, r.Formula.Clauses)
			}
		}
	}
}

func TestPreprocessShrinksCircuitCNF(t *testing.T) {
	// A Tseitin-encoded miter has many functionally-defined variables; BVE
	// should remove a meaningful fraction.
	f := cnf.NewFormula(4)
	// Chain of definitions: y1 = x1∨x2 (as 3 clauses), used once.
	f.AddClause(lit(5), lit(-1))
	f.AddClause(lit(5), lit(-2))
	f.AddClause(lit(-5), lit(1), lit(2))
	f.AddClause(lit(-5), lit(3))
	f.AddClause(lit(4), lit(3))
	before := f.NumClauses()
	r := Preprocess(f, Options{})
	if r.Formula.NumClauses() >= before {
		t.Fatalf("no shrink: %d -> %d", before, r.Formula.NumClauses())
	}
}

func TestPreprocessDoesNotModifyInput(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(lit(1), lit(2))
	f.AddClause(lit(-1), lit(2))
	clone := f.Clone()
	Preprocess(f, Options{})
	if f.NumClauses() != clone.NumClauses() {
		t.Fatal("input clause count changed")
	}
	for i := range f.Clauses {
		if len(f.Clauses[i]) != len(clone.Clauses[i]) {
			t.Fatal("input clause changed")
		}
	}
}

func TestTautologyDropped(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(lit(1), lit(-1))
	f.AddClause(lit(2))
	r := Preprocess(f, Options{})
	if r.Unsat || r.Formula.NumClauses() != 0 {
		t.Fatalf("tautology+unit should vanish, got %v", r.Formula.Clauses)
	}
}

func TestEmptyFormula(t *testing.T) {
	f := cnf.NewFormula(3)
	r := Preprocess(f, Options{})
	if r.Unsat || r.Formula.NumClauses() != 0 {
		t.Fatal("empty formula mishandled")
	}
	m := r.Reconstruct(make(cnf.Assignment, 3))
	if len(m) != 3 {
		t.Fatal("reconstruction length")
	}
}

func TestFrozenVariableSurvivesBVE(t *testing.T) {
	// Variable 1 is pure (occurs only negatively) — normally eliminated
	// trivially. Frozen, it must survive with its clauses intact.
	mk := func() *cnf.Formula {
		f := cnf.NewFormula(3)
		f.AddClause(lit(2), lit(3), lit(-1))
		f.AddClause(lit(-2), lit(-1))
		return f
	}
	r := Preprocess(mk(), Options{})
	if !r.Eliminated(0) {
		t.Fatal("unfrozen pure variable should be eliminated")
	}
	r = Preprocess(mk(), Options{Frozen: []cnf.Var{0}})
	if r.Eliminated(0) {
		t.Fatal("frozen variable was eliminated")
	}
	// The frozen variable keeps its meaning: whatever value a model of the
	// simplified formula gives it, reconstruction preserves that value and
	// still satisfies the original formula. (Its clauses may still vanish
	// when surrounding variables are eliminated — reconstruction then
	// derives those variables to cover them.)
	for _, val := range []bool{false, true} {
		model := make(cnf.Assignment, 3)
		model[0] = val
		m := r.Reconstruct(model)
		if m[0] != val {
			t.Fatalf("frozen value %v not preserved by reconstruction", val)
		}
		if !mk().Eval(m) {
			t.Fatalf("reconstruction with frozen=%v fails the original formula", val)
		}
	}
}

func TestFrozenVariableMayStillBeFixed(t *testing.T) {
	// Freezing guards against elimination, not against proved facts: a
	// unit clause still fixes the variable, and Fixed exposes the value.
	f := cnf.NewFormula(2)
	f.AddClause(lit(-1))
	f.AddClause(lit(1), lit(2))
	r := Preprocess(f, Options{Frozen: []cnf.Var{0}})
	if r.Eliminated(0) {
		t.Fatal("frozen variable eliminated")
	}
	v, fixed := r.Fixed(0)
	if !fixed || v {
		t.Fatalf("want fixed false, got value=%v fixed=%v", v, fixed)
	}
	if _, fixed := r.Fixed(1); !fixed {
		t.Fatal("propagated consequence not reported fixed")
	}
}

func TestPreprocessorReuseKeepsResultsIndependent(t *testing.T) {
	p := NewPreprocessor()
	f1 := cnf.NewFormula(4)
	f1.AddClause(lit(1), lit(2))
	f1.AddClause(lit(-1), lit(3))
	f1.AddClause(lit(4))
	r1 := p.Preprocess(f1, Options{})
	snap := make([]string, len(r1.Formula.Clauses))
	for i, c := range r1.Formula.Clauses {
		snap[i] = c.String()
	}

	// A second, different run over the same Preprocessor must not corrupt
	// the first result.
	f2 := cnf.NewFormula(8)
	for i := 1; i <= 7; i++ {
		f2.AddClause(lit(-i), lit(i+1))
	}
	f2.AddClause(lit(1))
	r2 := p.Preprocess(f2, Options{})
	if r2.Unsat {
		t.Fatal("chain formula reported unsat")
	}
	m2 := r2.Reconstruct(make(cnf.Assignment, 8))
	if !f2.Eval(m2) {
		t.Fatal("second result reconstruction broken")
	}
	for i, c := range r1.Formula.Clauses {
		if c.String() != snap[i] {
			t.Fatalf("first result mutated by reuse: %q != %q", c.String(), snap[i])
		}
	}
	m1 := r1.Reconstruct(make(cnf.Assignment, 4))
	if !f1.Eval(m1) {
		t.Fatal("first result reconstruction broken after reuse")
	}
}

// FuzzFrozenPreprocess checks the frozen-variable contract on random
// formulas with random frozen sets: frozen variables are never eliminated,
// satisfiability is preserved, and reconstruction lifts any model of the
// simplified formula to the original — with the frozen variables' values
// taken verbatim from the solved model unless unit propagation fixed them.
func FuzzFrozenPreprocess(f *testing.F) {
	f.Add(int64(1), uint8(0x03))
	f.Add(int64(42), uint8(0xFF))
	f.Fuzz(func(t *testing.T, seed int64, frozenMask uint8) {
		rng := rand.New(rand.NewSource(seed))
		vars := 3 + rng.Intn(6)
		form := cnf.NewFormula(vars)
		for i := 0; i < 2+rng.Intn(24); i++ {
			width := 1 + rng.Intn(3)
			var c []cnf.Lit
			for j := 0; j < width; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(vars)), rng.Intn(2) == 0))
			}
			form.AddClause(c...)
		}
		var frozen []cnf.Var
		for v := 0; v < vars; v++ {
			if frozenMask&(1<<uint(v)) != 0 {
				frozen = append(frozen, cnf.Var(v))
			}
		}
		wantSat, _ := brute.SAT(form)
		r := Preprocess(form, Options{Frozen: frozen})
		for _, v := range frozen {
			if r.Eliminated(v) {
				t.Fatalf("frozen %v eliminated\n%v", v, form.Clauses)
			}
		}
		if r.Unsat {
			if wantSat {
				t.Fatalf("claims unsat on sat formula %v", form.Clauses)
			}
			return
		}
		s := sat.New()
		s.EnsureVars(vars)
		s.AddFormula(r.Formula)
		st := s.Solve()
		if (st == sat.Sat) != wantSat {
			t.Fatalf("simplified verdict %v, original sat=%v", st, wantSat)
		}
		if st != sat.Sat {
			return
		}
		model := s.Model()[:vars]
		m := r.Reconstruct(model)
		if !form.Eval(m) {
			t.Fatalf("reconstructed model fails original\norig: %v\nsimplified: %v",
				form.Clauses, r.Formula.Clauses)
		}
		for _, v := range frozen {
			want := model[v]
			if fv, fixed := r.Fixed(v); fixed {
				want = fv
			}
			if m[v] != want {
				t.Fatalf("frozen %v changed by reconstruction", v)
			}
		}
	})
}
