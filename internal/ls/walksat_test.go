package ls

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/brute"
	"repro/internal/cnf"
)

func lit(i int) cnf.Lit { return cnf.FromDIMACS(i) }

func TestWalkSATFindsSatisfyingAssignment(t *testing.T) {
	w := cnf.NewWCNF(3)
	w.AddSoft(1, lit(1), lit(2))
	w.AddSoft(1, lit(-1), lit(3))
	w.AddSoft(1, lit(-3), lit(2))
	r := Minimize(context.Background(), w, Params{Seed: 1})
	if r.Cost != 0 {
		t.Fatalf("cost %d, want 0", r.Cost)
	}
	cost, hardOK := w.CostOf(r.Model)
	if !hardOK || cost != 0 {
		t.Fatal("model does not satisfy formula")
	}
}

func TestWalkSATUpperBoundIsSound(t *testing.T) {
	// On random instances the walk's cost must be a true upper bound:
	// >= brute-force optimum and exactly the model's cost.
	rng := rand.New(rand.NewSource(55))
	reachedOptimum := 0
	for iter := 0; iter < 40; iter++ {
		w := cnf.NewWCNF(3 + rng.Intn(7))
		for i := 0; i < 5+rng.Intn(20); i++ {
			width := 1 + rng.Intn(3)
			c := make([]cnf.Lit, 0, width)
			for j := 0; j < width; j++ {
				c = append(c, cnf.NewLit(cnf.Var(rng.Intn(w.NumVars)), rng.Intn(2) == 0))
			}
			if rng.Intn(5) == 0 {
				w.AddHard(c...)
			} else {
				w.AddSoft(cnf.Weight(1+rng.Intn(3)), c...)
			}
		}
		want, _, feasible := brute.MinCostWCNF(w)
		r := Minimize(context.Background(), w, Params{Seed: int64(iter), MaxFlips: 2000, Tries: 5})
		if !feasible {
			// The walk may or may not notice; it just can't return a
			// feasible model.
			if r.Cost >= 0 {
				if _, hardOK := w.CostOf(r.Model); hardOK {
					t.Fatalf("iter %d: infeasible instance but walk claims feasible model", iter)
				}
				t.Fatalf("iter %d: inconsistent result", iter)
			}
			continue
		}
		if r.Cost < 0 {
			continue // walk failed to find a feasible assignment: allowed
		}
		if r.Cost < want {
			t.Fatalf("iter %d: walk cost %d below optimum %d", iter, r.Cost, want)
		}
		cost, hardOK := w.CostOf(r.Model)
		if !hardOK || cost != r.Cost {
			t.Fatalf("iter %d: model cost %d (hard %v) != reported %d",
				iter, cost, hardOK, r.Cost)
		}
		if r.Cost == want {
			reachedOptimum++
		}
	}
	// The walk should reach the optimum on most tiny instances.
	if reachedOptimum < 25 {
		t.Fatalf("walk reached the optimum only %d/40 times", reachedOptimum)
	}
}

func TestWalkSATEmptyClauses(t *testing.T) {
	w := cnf.NewWCNF(1)
	w.AddSoft(3)
	w.AddSoft(1, lit(1))
	r := Minimize(context.Background(), w, Params{Seed: 2})
	if r.Cost != 3 {
		t.Fatalf("cost %d, want 3 (empty soft clause unavoidable)", r.Cost)
	}
	// Hard empty clause: infeasible.
	h := cnf.NewWCNF(1)
	h.AddHard()
	if r := Minimize(context.Background(), h, Params{Seed: 2}); r.Cost != -1 {
		t.Fatalf("hard empty clause must be infeasible, got %d", r.Cost)
	}
}

func TestWalkSATWeightedPreference(t *testing.T) {
	// (x, 10) vs (¬x, 1): walk should quickly settle at cost 1.
	w := cnf.NewWCNF(1)
	w.AddSoft(10, lit(1))
	w.AddSoft(1, lit(-1))
	r := Minimize(context.Background(), w, Params{Seed: 3, MaxFlips: 1000})
	if r.Cost != 1 {
		t.Fatalf("cost %d, want 1", r.Cost)
	}
}

func TestWalkSATContextTimeout(t *testing.T) {
	w := cnf.NewWCNF(30)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 200; i++ {
		w.AddSoft(1,
			cnf.NewLit(cnf.Var(rng.Intn(30)), rng.Intn(2) == 0),
			cnf.NewLit(cnf.Var(rng.Intn(30)), rng.Intn(2) == 0),
			cnf.NewLit(cnf.Var(rng.Intn(30)), rng.Intn(2) == 0))
	}
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	Minimize(ctx, w, Params{Seed: 5, MaxFlips: 1 << 30, Tries: 1 << 20})
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline not honoured")
	}
}

func TestWalkSATDeterministic(t *testing.T) {
	w := cnf.NewWCNF(8)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 30; i++ {
		w.AddSoft(1,
			cnf.NewLit(cnf.Var(rng.Intn(8)), rng.Intn(2) == 0),
			cnf.NewLit(cnf.Var(rng.Intn(8)), rng.Intn(2) == 0))
	}
	a := Minimize(context.Background(), w, Params{Seed: 9, MaxFlips: 500, Tries: 3})
	b := Minimize(context.Background(), w, Params{Seed: 9, MaxFlips: 500, Tries: 3})
	if a.Cost != b.Cost || a.Flips != b.Flips {
		t.Fatalf("same seed, different outcome: %v vs %v", a, b)
	}
}

func TestWalkSATTautologyIgnored(t *testing.T) {
	w := cnf.NewWCNF(2)
	w.AddSoft(1, lit(1), lit(-1))
	w.AddSoft(1, lit(2))
	r := Minimize(context.Background(), w, Params{Seed: 7})
	if r.Cost != 0 {
		t.Fatalf("cost %d, want 0", r.Cost)
	}
}
