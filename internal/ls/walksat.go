// Package ls provides stochastic local search for MaxSAT upper bounds — a
// WalkSAT-style optimizer in the tradition the paper's Section 2.1 calls
// "an alternative, in general incomplete, approach to MaxSAT".
//
// The searcher is used two ways in this repository: standalone, as an
// incomplete any-time MaxSAT solver, and inside the branch-and-bound
// baseline as a stronger initial upper bound than the greedy
// majority-polarity assignment.
package ls

import (
	"context"
	"math/rand"

	"repro/internal/cnf"
	"repro/internal/opt"
)

// Params tunes the walk.
type Params struct {
	// Seed makes the walk deterministic.
	Seed int64
	// MaxFlips per try. 0 means 10000.
	MaxFlips int
	// Tries (restarts). 0 means 10.
	Tries int
	// Noise is the random-walk probability in [0,1]. 0 means 0.2.
	Noise float64
	// HardWeight is the synthetic weight of hard clauses during the walk;
	// 0 means 1 + total soft weight (any hard violation dominates).
	HardWeight cnf.Weight
	// OnImprove, when non-nil, is called with every strict improvement of
	// the best hard-feasible assignment (cost, then the model, which the
	// callback must not retain past the call). The portfolio engine uses it
	// to seed the shared upper bound while the walk is still running.
	OnImprove func(cost cnf.Weight, model cnf.Assignment)
	// Prep, when non-nil, marks the instance as the rewritten formula of a
	// soft-aware preprocessing stage: the walk flips over the simplified
	// clauses, but every improvement is restored to the original variable
	// space and rescored against the original softs before it reaches
	// Result or OnImprove. Restoration can only lower the cost (a restored
	// model satisfies every soft clause its selector claims, and sometimes
	// more), so the walk's improvement gate stays monotone.
	Prep *opt.Prep
}

// Result is the best assignment found.
type Result struct {
	// Cost is the total weight of falsified soft clauses, or -1 when no
	// hard-feasible assignment was encountered.
	Cost cnf.Weight
	// Model achieves Cost (nil when Cost is -1).
	Model cnf.Assignment
	// Flips is the number of flips performed across all tries.
	Flips int
}

type wClause struct {
	lits   []cnf.Lit
	weight cnf.Weight // effective weight during the walk
	soft   bool
}

// Minimize runs WalkSAT on the instance and returns the best hard-feasible
// assignment seen. It never proves optimality. Cancelling ctx stops the
// walk at the next flip-batch boundary.
func Minimize(ctx context.Context, w *cnf.WCNF, p Params) Result {
	if p.MaxFlips == 0 {
		p.MaxFlips = 10000
	}
	if p.Tries == 0 {
		p.Tries = 10
	}
	if p.Noise == 0 {
		p.Noise = 0.2
	}
	if p.HardWeight == 0 {
		p.HardWeight = w.SoftWeightSum() + 1
	}
	rng := rand.New(rand.NewSource(p.Seed))

	// Normalized clause set; empty soft clauses contribute a fixed cost.
	var clauses []wClause
	var baseCost cnf.Weight
	for _, c := range w.Clauses {
		norm, taut := c.Clause.Clone().Normalize()
		if taut {
			continue
		}
		if len(norm) == 0 {
			if c.Hard() {
				return Result{Cost: -1} // hard empty clause: infeasible
			}
			baseCost += c.Weight
			continue
		}
		wc := wClause{lits: norm, weight: p.HardWeight}
		if !c.Hard() {
			wc.weight = c.Weight
			wc.soft = true
		}
		clauses = append(clauses, wc)
	}
	n := w.NumVars

	occ := make([][]int32, 2*n)
	for ci, c := range clauses {
		for _, l := range c.lits {
			occ[l] = append(occ[l], int32(ci))
		}
	}

	best := Result{Cost: -1}
	walkBest := cnf.Weight(-1) // best walk-space cost; gates rescoring
	a := make(cnf.Assignment, n)
	trueCnt := make([]int32, len(clauses))
	falseClauses := make([]int32, 0, len(clauses))
	falsePos := make([]int32, len(clauses)) // index in falseClauses, -1 if sat

	for try := 0; try < p.Tries; try++ {
		if ctx.Err() != nil {
			break
		}
		for v := range a {
			a[v] = rng.Intn(2) == 0
		}
		// Initialize counters.
		falseClauses = falseClauses[:0]
		var cur cnf.Weight // weighted cost incl. hard penalties
		for ci, c := range clauses {
			cnt := int32(0)
			for _, l := range c.lits {
				if a.Lit(l) {
					cnt++
				}
			}
			trueCnt[ci] = cnt
			if cnt == 0 {
				falsePos[ci] = int32(len(falseClauses))
				falseClauses = append(falseClauses, int32(ci))
				cur += c.weight
			} else {
				falsePos[ci] = -1
			}
		}
		record := func() {
			cost, hardOK := softCost(clauses, trueCnt, baseCost)
			if !hardOK {
				return
			}
			if p.Prep != nil {
				// Rescore on walk-space ties too, not only improvements: two
				// models of equal walk cost can restore to different original
				// costs (a gratuitously false selector whose clause the
				// assignment satisfies anyway is free after restoration).
				if walkBest >= 0 && cost > walkBest {
					return
				}
				walkBest = cost
				m := p.Prep.Restore(a)
				c := p.Prep.Score(m)
				if best.Cost >= 0 && c >= best.Cost {
					return
				}
				best.Cost = c
				best.Model = m
			} else {
				if best.Cost >= 0 && cost >= best.Cost {
					return
				}
				best.Cost = cost
				best.Model = append(cnf.Assignment{}, a...)
			}
			if p.OnImprove != nil {
				p.OnImprove(best.Cost, best.Model)
			}
		}
		record()

		for flip := 0; flip < p.MaxFlips; flip++ {
			if len(falseClauses) == 0 {
				break // everything satisfied: cost == baseCost, can't improve
			}
			if flip&1023 == 0 && ctx.Err() != nil {
				break
			}
			best.Flips++
			c := clauses[falseClauses[rng.Intn(len(falseClauses))]]
			var v cnf.Var
			if rng.Float64() < p.Noise {
				v = c.lits[rng.Intn(len(c.lits))].Var()
			} else {
				// Pick the literal with minimal weighted break.
				bestBreak := cnf.Weight(-1)
				for _, l := range c.lits {
					br := breakWeight(clauses, occ, trueCnt, a, l.Var())
					if bestBreak < 0 || br < bestBreak {
						bestBreak = br
						v = l.Var()
					}
				}
			}
			flipVar(clauses, occ, trueCnt, a, v, &falseClauses, falsePos)
			record()
		}
	}
	return best
}

// softCost computes the soft falsified weight and hard feasibility from the
// true-literal counters.
func softCost(clauses []wClause, trueCnt []int32, baseCost cnf.Weight) (cnf.Weight, bool) {
	cost := baseCost
	hardOK := true
	for ci, c := range clauses {
		if trueCnt[ci] > 0 {
			continue
		}
		if c.soft {
			cost += c.weight
		} else {
			hardOK = false
		}
	}
	return cost, hardOK
}

// breakWeight sums the weights of clauses that become falsified when v is
// flipped (clauses where v currently provides the only true literal).
func breakWeight(clauses []wClause, occ [][]int32, trueCnt []int32, a cnf.Assignment, v cnf.Var) cnf.Weight {
	cur := cnf.NewLit(v, !a[v]) // literal currently true
	var br cnf.Weight
	for _, ci := range occ[cur] {
		if trueCnt[ci] == 1 {
			br += clauses[ci].weight
		}
	}
	return br
}

// flipVar flips v and maintains counters and the false-clause worklist.
func flipVar(clauses []wClause, occ [][]int32, trueCnt []int32, a cnf.Assignment, v cnf.Var, falseClauses *[]int32, falsePos []int32) {
	wasTrue := cnf.NewLit(v, !a[v])
	a[v] = !a[v]
	nowTrue := wasTrue.Neg()
	for _, ci := range occ[wasTrue] {
		trueCnt[ci]--
		if trueCnt[ci] == 0 {
			falsePos[ci] = int32(len(*falseClauses))
			*falseClauses = append(*falseClauses, ci)
		}
	}
	for _, ci := range occ[nowTrue] {
		trueCnt[ci]++
		if trueCnt[ci] == 1 {
			// Remove from false worklist (swap-delete).
			pos := falsePos[ci]
			last := (*falseClauses)[len(*falseClauses)-1]
			(*falseClauses)[pos] = last
			falsePos[last] = pos
			*falseClauses = (*falseClauses)[:len(*falseClauses)-1]
			falsePos[ci] = -1
		}
	}
}
