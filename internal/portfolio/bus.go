package portfolio

import (
	"sync/atomic"

	"repro/internal/cnf"
)

// This file implements the portfolio's clause-exchange bus: a lock-free
// multi-producer broadcast ring. Every member publishes the learnt clauses
// its solver exports and reads, at its own pace, the clauses the others
// published. The design goals, in order: publishing never blocks a solver
// (the hot search loop calls Export), readers never block writers, and a
// slow member bounds its own cost — it either skips ahead past overwritten
// entries or caps how many clauses it attaches per import point, so a fast
// learner can flood neither memory nor a slow member's time. Clause
// exchange is best-effort by nature; dropping a lapped entry loses a
// deduction another member may re-derive, never correctness.
//
// Mechanics: writers claim a slot by atomically incrementing a global
// sequence and store an immutable message (with its sequence embedded) into
// slots[seq % capacity] via an atomic pointer. A reader at sequence r loads
// the slot r maps to: an embedded sequence equal to r is the message it
// wants; smaller means not yet published (stop); larger means the ring
// lapped the reader (resume at the oldest coherent entry). Messages are
// never mutated after publication, so the atomic pointer load is the only
// synchronization a reader needs.

// message is one published clause. Immutable after Publish.
type message struct {
	seq  uint64
	src  int
	lbd  int32
	lits []cnf.Lit
}

// Bus is the lock-free clause-exchange ring shared by one portfolio run.
type Bus struct {
	slots []atomic.Pointer[message]
	mask  uint64
	wcur  atomic.Uint64 // next sequence to claim
}

// defaultBusCapacity bounds the exchange backlog. With the export filter
// passing only glue and binary clauses, 4096 in-flight clauses outlast any
// realistic reader lag.
const defaultBusCapacity = 4096

// NewBus returns a bus holding the last capacity published clauses
// (rounded up to a power of two, minimum 64).
func NewBus(capacity int) *Bus {
	n := 64
	for n < capacity {
		n *= 2
	}
	return &Bus{slots: make([]atomic.Pointer[message], n), mask: uint64(n - 1)}
}

// Endpoint returns member src's handle on the bus. Each member must use its
// own endpoint (the read cursor is member state); src identifies the member
// so it never reads its own exports back.
func (b *Bus) Endpoint(src int) *Endpoint {
	return &Endpoint{bus: b, src: src}
}

// Endpoint is one member's inbox/outbox pair. It implements sat.Exchange.
// Export is safe to call concurrently with every other bus user; Import is
// single-consumer per endpoint (each solver drains its own inbox).
type Endpoint struct {
	bus      *Bus
	src      int
	rcur     uint64 // next sequence to read
	ownAhead int    // own exports not yet passed by the read cursor
	dropped  int64  // entries lost to ring laps (telemetry, best-effort)
}

// importBatch caps the clauses one Import call yields: backpressure on the
// import side, so a member that fell behind spends bounded time catching up
// per level-0 boundary instead of attaching an unbounded backlog at once.
const importBatch = 512

// Export publishes a clause. The literals are copied; the call never blocks.
func (e *Endpoint) Export(lits []cnf.Lit, lbd int32) {
	b := e.bus
	m := &message{src: e.src, lbd: lbd, lits: append([]cnf.Lit(nil), lits...)}
	m.seq = b.wcur.Add(1) - 1
	b.slots[m.seq&b.mask].Store(m)
	e.ownAhead++
}

// Import yields the clauses published by other members since the last call,
// oldest first, up to importBatch of them.
func (e *Endpoint) Import(yield func(lits []cnf.Lit, lbd int32)) {
	b := e.bus
	for n := 0; n < importBatch; {
		if e.rcur >= b.wcur.Load() {
			return
		}
		m := b.slots[e.rcur&b.mask].Load()
		if m == nil || m.seq < e.rcur {
			// The writer claimed this sequence but has not published yet.
			return
		}
		if m.seq > e.rcur {
			// Lapped: everything up to the entry now in this slot was
			// overwritten. Resume at the oldest sequence the ring can still
			// hold coherently.
			oldest := m.seq - b.mask
			e.dropped += int64(oldest - e.rcur)
			e.rcur = oldest
			continue
		}
		e.rcur++
		if m.src != e.src {
			yield(m.lits, m.lbd)
			n++
		} else if e.ownAhead > 0 {
			e.ownAhead--
		}
	}
}

// Pending estimates the backlog of foreign clauses an Import call would
// yield: the published entries this endpoint has not read yet, minus the
// ones it exported itself (tracked approximately — laps can make the
// estimate conservative, never negative).
func (e *Endpoint) Pending() int {
	w := e.bus.wcur.Load()
	if w <= e.rcur {
		return 0
	}
	n := int(w-e.rcur) - e.ownAhead
	if n < 0 {
		return 0
	}
	return n
}

// Dropped reports how many bus entries this endpoint lost to ring laps.
func (e *Endpoint) Dropped() int64 { return e.dropped }
