// Package portfolio implements a bound-sharing parallel portfolio of MaxSAT
// optimizers.
//
// The DATE 2008 paper's own evaluation (Table 1) shows that no single
// algorithm dominates: branch and bound wins on small random instances, the
// PBO formulation on instances with few clauses, and the core-guided msu
// family on industrial ones. The portfolio engine exploits exactly that
// complementarity: it races a configurable line-up of complete optimizers in
// goroutines, each on its own clone of the formula, all wired to one shared
// opt.Bounds. A WalkSAT seeder publishes an early upper bound, every member
// publishes the lower bounds it proves and the models it finds, and members
// prune against externally improved bounds (msu4 tightens its incremental
// totalizer bound, branch and bound tightens its pruning threshold, binary-search
// PBO halves its interval from above). The first member to prove an optimum
// — or hard-clause unsatisfiability — wins; the engine cancels the rest,
// waits for them to exit, and returns the winning result. Because bounds
// are exchanged, the portfolio can also *close* bounds across members: a
// lower bound proved by msu4 meeting an upper bound found by WalkSAT ends
// the race even though neither member finished alone.
//
// If the context expires before anyone proves an optimum, the engine
// returns the best shared bounds with StatusUnknown — exactly the anytime
// behaviour the sequential algorithms have, but with the best of all
// members instead of one.
package portfolio

import (
	"context"
	"time"

	"repro/internal/bnb"
	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/ls"
	"repro/internal/opt"
	"repro/internal/pbo"
	"repro/internal/sat"
)

// Spec names a portfolio member and builds a fresh solver instance for one
// run (fresh state per run, like restarting the binary).
type Spec struct {
	Name string
	Make func(o opt.Options) opt.Solver
}

// DefaultMembers is the unweighted line-up, strongest first (the Jobs cap
// truncates from the back): the paper's best performer, the families it
// loses to, and diverse fallbacks. Near-duplicate members carry SAT-engine
// diversification: since the incremental totalizer made the v1/v2 encoding
// choice irrelevant, msu4-v1 would repeat msu4-v2's run move for move, so it
// races with Glucose-style adaptive restarts, a faster VSIDS decay, and the
// opposite initial phase instead; msu3, whose core extraction mirrors
// msu4's early iterations, diversifies its restart schedule too.
func DefaultMembers() []Spec {
	return []Spec{
		{Name: "msu4-v2", Make: func(o opt.Options) opt.Solver { return core.NewMSU4V2(o) }},
		{Name: "oll", Make: func(o opt.Options) opt.Solver { return core.NewOLL(o) }},
		{Name: "maxsatz", Make: func(o opt.Options) opt.Solver { return bnb.New(o) }},
		{Name: "msu3", Make: func(o opt.Options) opt.Solver {
			o.Restart = sat.RestartGlucose
			return core.NewMSU3(o)
		}},
		{Name: "pbo-bin", Make: func(o opt.Options) opt.Solver { return &pbo.BinarySearch{Opts: o} }},
		{Name: "msu4-v1", Make: func(o opt.Options) opt.Solver {
			o.Restart = sat.RestartGlucose
			o.VarDecay = 0.92
			o.PosPhase = true
			return core.NewMSU4V1(o)
		}},
		{Name: "pbo", Make: func(o opt.Options) opt.Solver { return &pbo.Linear{Opts: o} }},
		{Name: "msu1", Make: func(o opt.Options) opt.Solver { return core.NewMSU1(o) }},
	}
}

// WeightedMembers is the line-up for weighted partial MaxSAT instances.
// OLL leads: stratification, hardening and per-core totalizers make it the
// strongest member of this line-up on industrial-shaped weighted instances
// (the RC2/EvalMaxSAT lineage dominates the weighted MaxSAT Evaluation
// tracks for the same reason).
func WeightedMembers() []Spec {
	return []Spec{
		{Name: "oll", Make: func(o opt.Options) opt.Solver { return core.NewOLL(o) }},
		{Name: "wmsu4", Make: func(o opt.Options) opt.Solver { return core.NewWMSU4(o) }},
		{Name: "maxsatz", Make: func(o opt.Options) opt.Solver { return bnb.New(o) }},
		{Name: "wmsu1", Make: func(o opt.Options) opt.Solver { return core.NewWMSU1(o) }},
		{Name: "pbo", Make: func(o opt.Options) opt.Solver { return &pbo.Linear{Opts: o} }},
	}
}

// LineupSize returns the size of the default line-up raced for the given
// instance kind — the worker-slot demand a full portfolio run places on the
// serving layer's global budget (the WalkSAT seeder is not counted: it is
// flip-bounded and exits in milliseconds).
func LineupSize(weighted bool) int {
	if weighted {
		return len(WeightedMembers())
	}
	return len(DefaultMembers())
}

// Engine races portfolio members under a shared bound. It implements
// opt.Solver, so a portfolio can run anywhere a single algorithm can —
// including the experiment harness, where it appears as one more row.
type Engine struct {
	// Opts is passed to every member.
	Opts opt.Options
	// Members overrides the line-up; nil selects DefaultMembers or
	// WeightedMembers by instance kind. Members must accept the instance
	// kind they are raced on (unit-weight algorithms panic on weighted
	// instances, as everywhere else in this repository).
	Members []Spec
	// Jobs caps the number of members raced concurrently; 0 (or more than
	// the line-up has) races them all. Jobs == 1 degenerates to the first
	// member running alone, plus the WalkSAT seeder.
	Jobs int
	// Share enables learnt-clause exchange between the members: every
	// CDCL-based member whose encoding discipline allows it (see
	// opt.Options.AttachExchange) exports its short and low-LBD learnt
	// clauses — plus the proved cores of the msu family — to a lock-free
	// bus and imports the others' at its level-0 boundaries. Off by
	// default; with Share false no bus exists and each member behaves
	// bit-identically to running its (possibly diversified) configuration
	// alone.
	Share bool
	// NoSeed disables the WalkSAT upper-bound seeder.
	NoSeed bool
	// SeedFlips bounds the seeder's walk; 0 means 50000 flips over 3 tries.
	SeedFlips int
	// Label overrides the reported name (e.g. "portfolio-4").
	Label string
}

// New returns a portfolio racing at most jobs default members.
func New(o opt.Options, jobs int) *Engine {
	return &Engine{Opts: o, Jobs: jobs}
}

// Name implements opt.Solver.
func (e *Engine) Name() string {
	if e.Label != "" {
		return e.Label
	}
	return "portfolio"
}

// outcome pairs a member's result with its name and line-up position.
type outcome struct {
	idx  int
	name string
	res  opt.Result
}

// Solve implements opt.Solver: it races the members under ctx and returns
// the first proved result, or the best shared bounds once ctx expires.
// A caller-supplied shared bound is joined (the portfolio publishes into
// and observes it like any member would); nil gets a fresh one.
//
// With Opts.Preprocess set, the formula is preprocessed once and the
// members race clones of the simplified formula (the stage's cost is paid
// once and its benefit multiplies across the line-up); the WalkSAT seeder
// walks the simplified clauses too and publishes restored, rescored
// original-space models. The final result is restored before it is
// returned. Because the internal bound exchange then carries a mix of
// simplified- and original-space witnesses, a caller-supplied shared bound
// is not joined live in that mode; the portfolio publishes its final
// bounds into it instead.
func (e *Engine) Solve(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds) opt.Result {
	start := time.Now()
	prep, pw := opt.MaybePrep(w, e.Opts)
	if prep.HardUnsat() {
		return opt.Result{Status: opt.StatusUnsat, Cost: -1, Elapsed: time.Since(start)}
	}
	w = pw
	memberOpts := e.Opts
	memberOpts.Preprocess = false // already done, once, here

	bounds := shared
	if bounds == nil || prep != nil {
		bounds = opt.NewBounds()
	}
	members := e.Members
	if members == nil {
		if w.Weighted() {
			members = WeightedMembers()
		} else {
			members = DefaultMembers()
		}
	}
	if e.Jobs > 0 && e.Jobs < len(members) {
		members = members[:e.Jobs]
	}
	if memberOpts.MemBytes > 0 && len(members) > 1 {
		// The memory budget bounds the whole race, so each member gets an
		// equal share of the cap rather than the full cap N times over.
		memberOpts.MemBytes /= int64(len(members))
		if memberOpts.MemBytes < 1 {
			memberOpts.MemBytes = 1
		}
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var bus *Bus
	if e.Share {
		bus = NewBus(defaultBusCapacity)
	}
	results := make(chan outcome, len(members))
	for i, spec := range members {
		i, spec := i, spec
		mo := memberOpts
		if bus != nil {
			// Clause exchange addresses clauses by variable number, so it is
			// sound only because every member solves a clone of the same
			// (already preprocessed) formula: the first w.NumVars variables
			// mean the same thing everywhere, and member-local auxiliaries
			// above that bound never cross the bus.
			mo.Exchange = bus.Endpoint(i)
			mo.ShareVars = w.NumVars
		}
		go func() {
			solver := spec.Make(mo)
			// Each member gets its own clone: solvers are free to index,
			// normalize, or otherwise pick the formula apart without any
			// cross-goroutine aliasing.
			cw := w.Clone()
			if cw.NumVars != w.NumVars {
				panic("portfolio: member clone broke variable alignment")
			}
			results <- outcome{i, spec.Name, solver.Solve(runCtx, cw, bounds)}
		}()
	}
	seedDone := make(chan struct{})
	if e.NoSeed {
		close(seedDone)
	} else {
		go func() {
			defer close(seedDone)
			flips := e.SeedFlips
			if flips == 0 {
				flips = 50000
			}
			ls.Minimize(runCtx, w.Clone(), ls.Params{
				Seed:     1,
				MaxFlips: flips,
				Tries:    3,
				Prep:     prep,
				OnImprove: func(cost cnf.Weight, model cnf.Assignment) {
					bounds.PublishUB(cost, model)
				},
			})
		}()
	}

	var (
		res    opt.Result
		won    bool
		iters  int
		satC   int
		unsatC int
		confl  int64
		share  []opt.ShareStats
	)
	if e.Share {
		share = make([]opt.ShareStats, len(members))
		for i, spec := range members {
			share[i].Member = spec.Name
		}
	}
	for remaining := len(members); remaining > 0; remaining-- {
		o := <-results
		iters += o.res.Iterations
		satC += o.res.SatCalls
		unsatC += o.res.UnsatCalls
		confl += o.res.Conflicts
		if share != nil {
			share[o.idx].Exported = o.res.Exported
			share[o.idx].Imported = o.res.Imported
			share[o.idx].Subsumed = o.res.ImportSubsumed
		}
		if !won && (o.res.Status == opt.StatusOptimal || o.res.Status == opt.StatusUnsat) {
			res = o.res
			res.Solver = o.name
			won = true
			cancel() // the race is decided; stop the losers
		}
	}
	cancel()
	<-seedDone // no goroutine outlives Solve

	if !won {
		// Deadline (or cancellation) before any member finished: report the
		// best exchanged bounds, which dominate every member's own view.
		// The bounds may have closed in the instant between a member's last
		// publish and its context check — that is still a proved optimum.
		res = opt.Result{Status: opt.StatusUnknown, Cost: -1}
		if !bounds.AdoptClosed(&res) {
			if cost, model, ok := bounds.Best(); ok {
				res.Cost = cost
				res.Model = model
			}
			if lb, ok := bounds.LB(); ok {
				if res.Cost >= 0 && lb > res.Cost {
					lb = res.Cost
				}
				res.LowerBound = lb
			}
		}
	}
	prep.Finish(&res)
	if prep != nil && shared != nil {
		// The caller's bound channel was not joined live (space mismatch);
		// hand it the final original-space bounds instead.
		shared.PublishLB(res.LowerBound)
		if res.Model != nil {
			shared.PublishUB(res.Cost, res.Model)
		}
	}
	// The work profile covers every member, not just the winner: the
	// portfolio's cost is the sum of its races.
	res.Iterations = iters
	res.SatCalls = satC
	res.UnsatCalls = unsatC
	res.Conflicts = confl
	if share != nil {
		res.Share = share
		res.Exported, res.Imported, res.ImportSubsumed = 0, 0, 0
		for _, m := range share {
			res.Exported += m.Exported
			res.Imported += m.Imported
			res.ImportSubsumed += m.Subsumed
		}
	}
	res.Elapsed = time.Since(start)
	return res
}
