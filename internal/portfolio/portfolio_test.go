package portfolio

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/opt"
)

// suite is a cross-family slice of the generator suite: families where
// msu4 wins, where branch and bound wins, and where the optimum is large.
func suite() []gen.Instance {
	return []gen.Instance{
		gen.Pigeonhole(5),
		gen.RandomKSAT(101, 16, 3, 6.0),
		gen.RandomKSAT(102, 20, 3, 6.0),
		gen.EquivMiter(6),
		gen.EquivMiter(8),
		gen.BMCCounter(4, 10),
		gen.Coloring(7, 10, 26, 3),
	}
}

// TestPortfolioMatchesMSU4 is the agreement check of the issue's acceptance
// criteria: racing the full line-up proves the same optima as msu4-v2 alone.
func TestPortfolioMatchesMSU4(t *testing.T) {
	for _, in := range suite() {
		ref := core.NewMSU4V2(opt.Options{}).Solve(context.Background(), in.W, nil)
		if ref.Status != opt.StatusOptimal {
			t.Fatalf("%s: msu4-v2 did not finish: %v", in.Name, ref.Status)
		}
		for _, jobs := range []int{2, 4, 0} {
			e := New(opt.Options{}, jobs)
			r := e.Solve(context.Background(), in.W, nil)
			if r.Status != opt.StatusOptimal {
				t.Fatalf("%s jobs=%d: status %v, want optimal", in.Name, jobs, r.Status)
			}
			if r.Cost != ref.Cost {
				t.Fatalf("%s jobs=%d: cost %d, msu4-v2 found %d", in.Name, jobs, r.Cost, ref.Cost)
			}
			if in.KnownCost >= 0 && r.Cost != in.KnownCost {
				t.Fatalf("%s jobs=%d: cost %d, known optimum %d", in.Name, jobs, r.Cost, in.KnownCost)
			}
			if !opt.VerifyModel(in.W, r) {
				t.Fatalf("%s jobs=%d: model does not witness cost %d", in.Name, jobs, r.Cost)
			}
			if r.Solver == "" {
				t.Fatalf("%s jobs=%d: winner not recorded", in.Name, jobs)
			}
		}
	}
}

// TestPortfolioShareMatchesMSU4: with learnt-clause sharing enabled the
// portfolio still proves exactly the optima msu4-v2 proves alone — the
// soundness half of the clause-exchange acceptance criteria. Runs under
// -race in CI, which also exercises the lock-free bus.
func TestPortfolioShareMatchesMSU4(t *testing.T) {
	for _, in := range suite() {
		ref := core.NewMSU4V2(opt.Options{}).Solve(context.Background(), in.W, nil)
		if ref.Status != opt.StatusOptimal {
			t.Fatalf("%s: msu4-v2 did not finish: %v", in.Name, ref.Status)
		}
		for _, jobs := range []int{2, 0} {
			e := New(opt.Options{}, jobs)
			e.Share = true
			r := e.Solve(context.Background(), in.W, nil)
			if r.Status != opt.StatusOptimal {
				t.Fatalf("%s jobs=%d share: status %v, want optimal", in.Name, jobs, r.Status)
			}
			if r.Cost != ref.Cost {
				t.Fatalf("%s jobs=%d share: cost %d, msu4-v2 found %d", in.Name, jobs, r.Cost, ref.Cost)
			}
			if !opt.VerifyModel(in.W, r) {
				t.Fatalf("%s jobs=%d share: model does not witness cost %d", in.Name, jobs, r.Cost)
			}
			if r.Share == nil {
				t.Fatalf("%s jobs=%d share: per-member share stats missing", in.Name, jobs)
			}
		}
	}
}

// TestPortfolioSharePreprocessed: sharing composes with the preprocess-once
// pipeline (members race clones of the simplified formula, so the shared
// variable prefix is the preprocessed one).
func TestPortfolioSharePreprocessed(t *testing.T) {
	for _, in := range []gen.Instance{gen.EquivMiter(8), gen.BMCCounter(4, 10)} {
		ref := core.NewMSU4V2(opt.Options{}).Solve(context.Background(), in.W, nil)
		e := New(opt.Options{Preprocess: true}, 4)
		e.Share = true
		r := e.Solve(context.Background(), in.W, nil)
		if r.Status != opt.StatusOptimal || r.Cost != ref.Cost {
			t.Fatalf("%s: share+pre status %v cost %d, want optimal %d", in.Name, r.Status, r.Cost, ref.Cost)
		}
		if !opt.VerifyModel(in.W, r) {
			t.Fatalf("%s: share+pre model does not witness cost", in.Name)
		}
	}
}

func TestPortfolioWeighted(t *testing.T) {
	in := gen.ColoringWeighted(3, 8, 20, 3, 5)
	ref := core.NewWMSU4(opt.Options{}).Solve(context.Background(), in.W, nil)
	if ref.Status != opt.StatusOptimal {
		t.Fatalf("wmsu4 did not finish: %v", ref.Status)
	}
	r := New(opt.Options{}, 0).Solve(context.Background(), in.W, nil)
	if r.Status != opt.StatusOptimal || r.Cost != ref.Cost {
		t.Fatalf("portfolio: status %v cost %d, wmsu4 found %d", r.Status, r.Cost, ref.Cost)
	}
	if !opt.VerifyModel(in.W, r) {
		t.Fatal("model does not witness cost")
	}
}

func TestPortfolioHardUnsat(t *testing.T) {
	w := gen.Pigeonhole(4).W.Clone()
	// Make every clause hard: the portfolio must report UNSAT.
	for i := range w.Clauses {
		w.Clauses[i].Weight = -1
	}
	r := New(opt.Options{}, 0).Solve(context.Background(), w, nil)
	if r.Status != opt.StatusUnsat {
		t.Fatalf("status %v, want UNSAT", r.Status)
	}
}

// TestPortfolioCancellation checks the issue's leak criterion: cancelling
// the context stops every worker, and no goroutine outlives Solve.
func TestPortfolioCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	// A large instance no member finishes in 10ms.
	in := gen.EquivMiter(24)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	done := make(chan opt.Result, 1)
	go func() {
		done <- New(opt.Options{}, 0).Solve(ctx, in.W, nil)
	}()
	var r opt.Result
	select {
	case r = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("portfolio did not return after cancellation")
	}
	if r.Status != opt.StatusUnknown {
		t.Fatalf("status %v, want Unknown at deadline", r.Status)
	}

	// Solve waits for all members and the seeder before returning, so the
	// goroutine count must come back down (poll briefly: the runtime needs
	// a moment to retire exiting goroutines).
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := runtime.NumGoroutine(); g <= before+1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestPortfolioAnytimeBounds: at the deadline the portfolio still reports
// the best exchanged bounds — in particular the WalkSAT-seeded upper bound
// with its model.
func TestPortfolioAnytimeBounds(t *testing.T) {
	in := gen.EquivMiter(20)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	r := New(opt.Options{}, 0).Solve(ctx, in.W, nil)
	if r.Status == opt.StatusUnknown {
		if r.Cost < 0 || r.Model == nil {
			t.Fatalf("anytime result missing seeded upper bound: %+v", r.Status)
		}
		if !opt.VerifyModel(in.W, r) {
			t.Fatal("anytime model inconsistent with cost")
		}
	}
	// (If a member happens to finish within the deadline on this machine,
	// optimality is checked by TestPortfolioMatchesMSU4.)
}

// TestPortfolioSharedBoundsJoin: a caller-provided Bounds is used instead
// of a fresh one, so an external upper bound can decide the race when a
// member proves a matching lower bound.
func TestPortfolioSharedBoundsJoin(t *testing.T) {
	in := gen.Pigeonhole(5) // optimum 1
	shared := opt.NewBounds()
	r := New(opt.Options{}, 2).Solve(context.Background(), in.W, shared)
	if r.Status != opt.StatusOptimal || r.Cost != 1 {
		t.Fatalf("status %v cost %d, want optimal 1", r.Status, r.Cost)
	}
	if ub, ok := shared.UB(); !ok || ub != 1 {
		t.Fatalf("winning bound not published into the caller's Bounds: %d %v", ub, ok)
	}
}

func TestPortfolioJobsTruncation(t *testing.T) {
	e := New(opt.Options{}, 1)
	e.NoSeed = true
	in := gen.EquivMiter(6)
	r := e.Solve(context.Background(), in.W, nil)
	if r.Status != opt.StatusOptimal {
		t.Fatalf("single-member portfolio: %v", r.Status)
	}
	if r.Solver != "msu4-v2" {
		t.Fatalf("jobs=1 should race only the first member, winner %q", r.Solver)
	}
}

func TestPortfolioName(t *testing.T) {
	if New(opt.Options{}, 0).Name() != "portfolio" {
		t.Fatal("name")
	}
	e := New(opt.Options{}, 4)
	e.Label = "portfolio-4"
	if e.Name() != "portfolio-4" {
		t.Fatal("label override")
	}
}

// TestPortfolioWeightedSuiteWithOLL races the weighted line-up (OLL in the
// lead) over the weighted generator suite, with and without clause sharing,
// and checks the proved optima against the known costs / the wmsu4
// reference. OLL itself never attaches the sharing bus (see
// opt.Options.AttachExchange), so sharing must not perturb its optima.
func TestPortfolioWeightedSuiteWithOLL(t *testing.T) {
	for _, in := range gen.WeightedSuite(23) {
		want := in.KnownCost
		if want < 0 {
			ref := core.NewWMSU4(opt.Options{}).Solve(context.Background(), in.W, nil)
			if ref.Status != opt.StatusOptimal {
				t.Fatalf("%s: wmsu4 reference did not finish: %v", in.Name, ref.Status)
			}
			want = ref.Cost
		}
		for _, share := range []bool{false, true} {
			e := New(opt.Options{}, 0)
			e.Share = share
			r := e.Solve(context.Background(), in.W, nil)
			if r.Status != opt.StatusOptimal || r.Cost != want {
				t.Fatalf("%s (share=%v): got status %v cost %d, want optimal %d",
					in.Name, share, r.Status, r.Cost, want)
			}
			if !opt.VerifyModel(in.W, r) {
				t.Fatalf("%s (share=%v): model does not witness cost", in.Name, share)
			}
		}
	}
}
