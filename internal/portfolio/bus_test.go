package portfolio

import (
	"sync"
	"testing"

	"repro/internal/cnf"
)

func busLits(xs ...int) []cnf.Lit {
	out := make([]cnf.Lit, len(xs))
	for i, x := range xs {
		out[i] = cnf.PosLit(cnf.Var(x))
	}
	return out
}

// TestBusBroadcast: entries reach every endpoint except the publisher,
// oldest first, exactly once.
func TestBusBroadcast(t *testing.T) {
	b := NewBus(64)
	a, c := b.Endpoint(0), b.Endpoint(1)
	a.Export(busLits(1, 2), 2)
	a.Export(busLits(3), 1)
	c.Export(busLits(4, 5), 2)

	var got [][]cnf.Lit
	c.Import(func(lits []cnf.Lit, lbd int32) {
		got = append(got, append([]cnf.Lit(nil), lits...))
	})
	if len(got) != 2 {
		t.Fatalf("endpoint 1 received %d clauses, want 2 (own export skipped)", len(got))
	}
	if got[0][0] != cnf.PosLit(1) || got[1][0] != cnf.PosLit(3) {
		t.Fatalf("wrong order or content: %v", got)
	}
	// A second drain yields nothing new.
	n := 0
	c.Import(func([]cnf.Lit, int32) { n++ })
	if n != 0 {
		t.Fatalf("re-import yielded %d clauses, want 0", n)
	}
	// Endpoint 0 sees only endpoint 1's export.
	n = 0
	a.Import(func(lits []cnf.Lit, lbd int32) {
		n++
		if lits[0] != cnf.PosLit(4) {
			t.Fatalf("endpoint 0 got %v", lits)
		}
	})
	if n != 1 {
		t.Fatalf("endpoint 0 received %d clauses, want 1", n)
	}
}

// TestBusLapped: a reader that fell a full ring behind skips the lost
// entries, records them as dropped, and resumes with coherent messages.
func TestBusLapped(t *testing.T) {
	b := NewBus(1) // rounds up to the 64-slot minimum
	w := b.Endpoint(0)
	r := b.Endpoint(1)
	const total = 300
	for i := 0; i < total; i++ {
		w.Export(busLits(i), 1)
	}
	var got []int
	r.Import(func(lits []cnf.Lit, lbd int32) {
		got = append(got, int(lits[0].Var()))
	})
	if len(got) == 0 || len(got) > len(b.slots) {
		t.Fatalf("lapped reader yielded %d clauses", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] != got[i-1]+1 {
			t.Fatalf("non-contiguous resume: %v", got)
		}
	}
	if got[len(got)-1] != total-1 {
		t.Fatalf("reader did not catch up to the newest entry: %v", got[len(got)-1])
	}
	if r.Dropped() == 0 {
		t.Fatal("lap not recorded as dropped entries")
	}
}

// TestBusConcurrent hammers the bus with parallel writers and readers under
// the race detector: every delivered message must be intact (its literals
// consistent with the checksum scheme) and never the reader's own.
func TestBusConcurrent(t *testing.T) {
	b := NewBus(128)
	const members = 6
	const perMember = 2000

	var wg sync.WaitGroup
	for m := 0; m < members; m++ {
		m := m
		e := b.Endpoint(m)
		wg.Add(1)
		go func() {
			defer wg.Done()
			reads := 0
			for i := 0; i < perMember; i++ {
				// Message: [src, i] encoded as variables; readers check
				// self-exclusion and internal consistency.
				e.Export(busLits(m, i), 2)
				if i%64 == 0 {
					e.Import(func(lits []cnf.Lit, lbd int32) {
						reads++
						if len(lits) != 2 {
							t.Errorf("torn message: %v", lits)
							return
						}
						src := int(lits[0].Var())
						if src == m {
							t.Errorf("endpoint %d received its own export", m)
						}
						if src < 0 || src >= members || int(lits[1].Var()) >= perMember {
							t.Errorf("corrupt message: %v", lits)
						}
					})
				}
			}
		}()
	}
	wg.Wait()
}
