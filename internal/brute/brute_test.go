package brute

import (
	"testing"

	"repro/internal/cnf"
)

func lit(i int) cnf.Lit { return cnf.FromDIMACS(i) }

func TestSATVerdicts(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(lit(1), lit(2))
	ok, model := SAT(f)
	if !ok || !f.Eval(model) {
		t.Fatal("satisfiable formula mishandled")
	}
	// Forcing both variables false contradicts the first clause.
	f.AddClause(lit(-1))
	f.AddClause(lit(-2))
	if ok, _ := SAT(f); ok {
		t.Fatal("forced contradiction declared satisfiable")
	}
}

func TestSATUnsat(t *testing.T) {
	f := cnf.NewFormula(1)
	f.AddClause(lit(1))
	f.AddClause(lit(-1))
	if ok, _ := SAT(f); ok {
		t.Fatal("unsat formula declared sat")
	}
}

func TestMaxSATKnownOptimum(t *testing.T) {
	// Paper Example 2: optimum 6 of 8.
	f := cnf.NewFormula(4)
	f.AddClause(lit(1))
	f.AddClause(lit(-1), lit(-2))
	f.AddClause(lit(2))
	f.AddClause(lit(-1), lit(-3))
	f.AddClause(lit(3))
	f.AddClause(lit(-2), lit(-3))
	f.AddClause(lit(1), lit(-4))
	f.AddClause(lit(-1), lit(4))
	best, model := MaxSAT(f)
	if best != 6 {
		t.Fatalf("MaxSAT = %d, want 6", best)
	}
	if got := f.CountSatisfied(model); got != 6 {
		t.Fatalf("witness satisfies %d, want 6", got)
	}
}

func TestMinCostWCNF(t *testing.T) {
	w := cnf.NewWCNF(1)
	w.AddSoft(5, lit(1))
	w.AddSoft(2, lit(-1))
	cost, model, feasible := MinCostWCNF(w)
	if !feasible || cost != 2 || !model[0] {
		t.Fatalf("cost %d feasible %v model %v", cost, feasible, model)
	}
	w.AddHard(lit(1))
	w.AddHard(lit(-1))
	if _, _, feasible := MinCostWCNF(w); feasible {
		t.Fatal("hard contradiction should be infeasible")
	}
}

func TestCountModels(t *testing.T) {
	f := cnf.NewFormula(2)
	f.AddClause(lit(1), lit(2))
	if n := CountModels(f); n != 3 {
		t.Fatalf("CountModels = %d, want 3", n)
	}
	f.AddClause(lit(-1), lit(-2))
	if n := CountModels(f); n != 2 {
		t.Fatalf("CountModels = %d, want 2", n)
	}
}

func TestTooManyVarsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for oversized formula")
		}
	}()
	f := cnf.NewFormula(MaxBruteVars + 1)
	SAT(f)
}
