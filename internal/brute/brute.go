// Package brute provides exhaustive reference solvers for small instances.
//
// They are deliberately simple — direct enumeration of all 2^n assignments —
// and serve as ground truth in the property-based tests that cross-check the
// CDCL solver, the cardinality encodings, and every MaxSAT algorithm in this
// repository. They are usable up to roughly 20 variables.
package brute

import (
	"repro/internal/cnf"
)

// MaxBruteVars is the largest variable count the exhaustive solvers accept.
const MaxBruteVars = 26

// SAT reports whether f is satisfiable, and if so returns a model.
func SAT(f *cnf.Formula) (bool, cnf.Assignment) {
	if f.NumVars > MaxBruteVars {
		panic("brute: too many variables")
	}
	n := f.NumVars
	a := make(cnf.Assignment, n)
	for bits := uint64(0); bits < 1<<uint(n); bits++ {
		for v := 0; v < n; v++ {
			a[v] = bits&(1<<uint(v)) != 0
		}
		if f.Eval(a) {
			out := make(cnf.Assignment, n)
			copy(out, a)
			return true, out
		}
	}
	return false, nil
}

// MaxSAT returns the maximum number of simultaneously satisfiable clauses of
// f and an assignment achieving it.
func MaxSAT(f *cnf.Formula) (int, cnf.Assignment) {
	if f.NumVars > MaxBruteVars {
		panic("brute: too many variables")
	}
	n := f.NumVars
	a := make(cnf.Assignment, n)
	best := -1
	var bestA cnf.Assignment
	for bits := uint64(0); bits < 1<<uint(n); bits++ {
		for v := 0; v < n; v++ {
			a[v] = bits&(1<<uint(v)) != 0
		}
		if s := f.CountSatisfied(a); s > best {
			best = s
			bestA = make(cnf.Assignment, n)
			copy(bestA, a)
			if best == len(f.Clauses) {
				break
			}
		}
	}
	return best, bestA
}

// MinCostWCNF returns the minimum total weight of falsified soft clauses over
// assignments satisfying all hard clauses, with an optimal assignment. The
// boolean result is false if no assignment satisfies the hard clauses.
func MinCostWCNF(w *cnf.WCNF) (cnf.Weight, cnf.Assignment, bool) {
	if w.NumVars > MaxBruteVars {
		panic("brute: too many variables")
	}
	n := w.NumVars
	a := make(cnf.Assignment, n)
	best := cnf.Weight(-1)
	var bestA cnf.Assignment
	for bits := uint64(0); bits < 1<<uint(n); bits++ {
		for v := 0; v < n; v++ {
			a[v] = bits&(1<<uint(v)) != 0
		}
		cost, hardOK := w.CostOf(a)
		if !hardOK {
			continue
		}
		if best < 0 || cost < best {
			best = cost
			bestA = make(cnf.Assignment, n)
			copy(bestA, a)
			if best == 0 {
				break
			}
		}
	}
	if best < 0 {
		return 0, nil, false
	}
	return best, bestA, true
}

// CountModels returns the number of satisfying assignments of f (over all
// f.NumVars variables).
func CountModels(f *cnf.Formula) int {
	if f.NumVars > MaxBruteVars {
		panic("brute: too many variables")
	}
	n := f.NumVars
	a := make(cnf.Assignment, n)
	count := 0
	for bits := uint64(0); bits < 1<<uint(n); bits++ {
		for v := 0; v < n; v++ {
			a[v] = bits&(1<<uint(v)) != 0
		}
		if f.Eval(a) {
			count++
		}
	}
	return count
}
