package maxsat

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/gen"
)

// TestServerDifferential submits a spread of instances through the service
// layer and checks every result against the direct SolveFormula path — the
// cache, coalescing and pool machinery must never change an answer.
func TestServerDifferential(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 2})
	defer s.Close()
	instances := []gen.Instance{
		gen.Pigeonhole(4),
		gen.RandomKSAT(7, 14, 3, 5.5),
		gen.EquivMiter(6),
		gen.Coloring(3, 8, 18, 2),
	}
	for _, inst := range instances {
		direct, err := Solve(inst.W, Options{})
		if err != nil {
			t.Fatalf("%s direct: %v", inst.Name, err)
		}
		job, err := s.Submit(inst.W, Options{})
		if err != nil {
			t.Fatalf("%s submit: %v", inst.Name, err)
		}
		res, err := job.Wait(context.Background())
		if err != nil {
			t.Fatalf("%s wait: %v", inst.Name, err)
		}
		if res.Status != Optimal || res.Cost != direct.Cost {
			t.Errorf("%s: served %v cost %d, direct cost %d",
				inst.Name, res.Status, res.Cost, direct.Cost)
		}
		if res.Cached {
			t.Errorf("%s: first submission claims a cache hit", inst.Name)
		}
		// Resubmission — different algorithm, same formula — is served from
		// the verified-result cache with the same optimum.
		again, err := s.Submit(inst.W, Options{Algorithm: AlgoPortfolio, Parallelism: 2})
		if err != nil {
			t.Fatalf("%s resubmit: %v", inst.Name, err)
		}
		res2, err := again.Wait(context.Background())
		if err != nil {
			t.Fatalf("%s rewait: %v", inst.Name, err)
		}
		if !res2.Cached || res2.Cost != direct.Cost {
			t.Errorf("%s: resubmission cached=%v cost=%d, want cached cost %d",
				inst.Name, res2.Cached, res2.Cost, direct.Cost)
		}
	}
	st := s.Stats()
	if st.CacheHits != int64(len(instances)) {
		t.Errorf("CacheHits = %d, want %d", st.CacheHits, len(instances))
	}
}

// TestServerWeighted covers the weighted-partial path end to end.
func TestServerWeighted(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 1})
	defer s.Close()
	w := NewWCNF(2)
	w.AddHard(FromDIMACS(1), FromDIMACS(2))
	w.AddSoft(3, FromDIMACS(-1))
	w.AddSoft(1, FromDIMACS(-2))
	job, err := s.Submit(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || res.Cost != 1 {
		t.Fatalf("weighted result %v cost %d, want Optimal cost 1", res.Status, res.Cost)
	}
	// A unit-weight-only algorithm is rejected at Submit, like at Solve.
	if _, err := s.Submit(w, Options{Algorithm: AlgoMSU4V2}); err != ErrWeighted {
		t.Fatalf("weighted msu4 submit: %v, want ErrWeighted", err)
	}
}

// TestServerUpdatesMonotone streams bound improvements for a real solve and
// checks monotonicity plus the closing lb == ub == optimum event.
func TestServerUpdatesMonotone(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 2})
	defer s.Close()
	inst := gen.Pigeonhole(6)
	job, err := s.Submit(inst.W, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var events []BoundUpdate
	for e := range job.Updates() {
		events = append(events, e)
	}
	if len(events) == 0 {
		t.Fatal("no bound updates streamed")
	}
	for i := 1; i < len(events); i++ {
		prev, cur := events[i-1], events[i]
		if prev.HasLB && cur.HasLB && cur.LB < prev.LB {
			t.Fatalf("LB fell: %+v after %+v", cur, prev)
		}
		if prev.HasUB && cur.HasUB && cur.UB > prev.UB {
			t.Fatalf("UB rose: %+v after %+v", cur, prev)
		}
	}
	res, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	last := events[len(events)-1]
	if !last.HasLB || !last.HasUB || last.LB != res.Cost || last.UB != res.Cost {
		t.Fatalf("closing event %+v, want lb=ub=%d", last, res.Cost)
	}
}

// TestServerCancelNoGoroutineLeak cancels running and queued jobs (including
// a portfolio job) and then closes the server; every solver goroutine must
// exit. Run under -race this also exercises the exchange teardown.
func TestServerCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	s := NewServer(ServerConfig{Workers: 2})
	inst := gen.Pigeonhole(20) // far too hard to finish: cancellation does the work
	var jobs []*Job
	for _, o := range []Options{
		{},
		{Algorithm: AlgoPortfolio, Parallelism: 4, ShareClauses: true},
		{Algorithm: AlgoBnB},
	} {
		job, err := s.Submit(inst.W, o)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, job)
	}
	time.Sleep(50 * time.Millisecond) // let the pool start what it can
	for _, j := range jobs {
		j.Cancel()
	}
	for _, j := range jobs {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if _, err := j.Wait(ctx); err != nil {
			t.Fatalf("cancelled job never completed: %v", err)
		}
		cancel()
	}
	s.Close()
	// Goroutine counts settle asynchronously; poll with a deadline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerPortfolioSlots proves the oversubscription guard: a portfolio
// job asking for more members than the pool has slots races a truncated
// line-up and still answers correctly.
func TestServerPortfolioSlots(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 2})
	defer s.Close()
	inst := gen.Pigeonhole(4)
	job, err := s.Submit(inst.W, Options{Algorithm: AlgoPortfolio, Parallelism: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || res.Cost != inst.KnownCost {
		t.Fatalf("clamped portfolio: %v cost %d, want Optimal cost %d",
			res.Status, res.Cost, inst.KnownCost)
	}
}

// TestServerTimeoutUnknown bounds a hopeless job and checks the deadline
// produces Unknown instead of hanging.
func TestServerTimeoutUnknown(t *testing.T) {
	s := NewServer(ServerConfig{Workers: 1, DefaultTimeout: 50 * time.Millisecond})
	defer s.Close()
	inst := gen.Pigeonhole(20)
	job, err := s.Submit(inst.W, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := job.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unknown {
		t.Fatalf("status %v, want Unknown at the deadline", res.Status)
	}
}

// TestServerDurableRestart round-trips a certified answer through a durable
// server restart: the second life serves it from the recovered, re-proved
// store without solving.
func TestServerDurableRestart(t *testing.T) {
	dir := t.TempDir()
	w := NewWCNF(1)
	w.AddSoft(1, FromDIMACS(1))
	w.AddSoft(1, FromDIMACS(-1))

	s, err := OpenServer(ServerConfig{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatalf("OpenServer: %v", err)
	}
	job, err := s.Submit(w, Options{Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := job.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Status != Optimal || r1.Cost != 1 || len(r1.Certificate) == 0 {
		t.Fatalf("first life: %+v", r1)
	}
	s.Close()

	s2, err := OpenServer(ServerConfig{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if err := s2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if st := s2.Stats(); st.Recovered != 1 || st.RecoveredRejected != 0 {
		t.Fatalf("recovery stats: %+v", st)
	}
	// Different options, same formula: answered from the recovered store.
	job2, err := s2.Submit(w, Options{Algorithm: AlgoOLL, Certify: true})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := job2.Wait(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached || r2.Status != Optimal || r2.Cost != 1 {
		t.Fatalf("second life: %+v", r2)
	}
	if err := CheckCertificate(w, r2.Certificate); err != nil {
		t.Fatalf("recovered certificate: %v", err)
	}
}

// TestServerReplaysInterruptedJob shuts a durable server down mid-solve and
// checks the next life replays the job under its original ID.
func TestServerReplaysInterruptedJob(t *testing.T) {
	dir := t.TempDir()
	inst := gen.Pigeonhole(8) // hard enough that Close always wins the race

	s, err := OpenServer(ServerConfig{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatalf("OpenServer: %v", err)
	}
	job, err := s.Submit(inst.W, Options{})
	if err != nil {
		t.Fatal(err)
	}
	id := job.ID()
	s.Close() // cancels the running solve; the journal entry stays pending

	s2, err := OpenServer(ServerConfig{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer s2.Close()
	if err := s2.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	replayed, ok := s2.Job(id)
	if !ok {
		t.Fatalf("job %d not addressable after restart", id)
	}
	if st, _ := replayed.State(); st == JobDone {
		if r, _ := replayed.Result(); r.Status != Unknown {
			t.Fatalf("replayed job finished with unexpected result: %+v", r)
		}
	}
	if st := s2.Stats(); st.Replayed != 1 {
		t.Fatalf("Stats.Replayed = %d, want 1", st.Replayed)
	}
}
