package maxsat

// FuzzProofChecker differential-fuzzes the certification pipeline: on
// fuzzer-chosen weighted instances, a certified solve must produce a
// certificate the independent checker accepts and whose cost matches
// exhaustive enumeration; a fuzzer-chosen bit flip of the serialized
// certificate must then either be rejected or still certify the true
// verdict — corruption may at worst be benign, never persuasive.

import (
	"testing"

	"repro/internal/brute"
	"repro/internal/cnf"
	"repro/internal/proof"
)

// fuzzWCNF builds a small weighted instance from a byte stream: each
// clause starts with a control byte (width, hard-or-weight), followed by
// that many literal bytes (variable modulo fuzzVars, sign from the high
// bit).
func fuzzWCNF(data []byte) *cnf.WCNF {
	const fuzzVars = 5
	const maxClauses = 24
	w := cnf.NewWCNF(fuzzVars)
	i := 0
	for i < len(data) && w.NumClauses() < maxClauses {
		ctl := data[i]
		i++
		width := int(ctl%3) + 1
		if i+width > len(data) {
			break
		}
		lits := make([]cnf.Lit, 0, width)
		for j := 0; j < width; j++ {
			b := data[i+j]
			v := cnf.Var(b % fuzzVars)
			if b >= 128 {
				lits = append(lits, cnf.NegLit(v))
			} else {
				lits = append(lits, cnf.PosLit(v))
			}
		}
		i += width
		if ctl%4 == 3 {
			w.AddHard(lits...)
		} else {
			w.AddSoft(cnf.Weight(ctl%7)+1, lits...)
		}
	}
	return w
}

func FuzzProofChecker(f *testing.F) {
	f.Add([]byte{0, 1, 0, 129}, byte(3))                             // two conflicting soft units
	f.Add([]byte{3, 1, 2, 3, 130, 131, 1, 4, 5}, byte(17))           // a hard clause plus softs
	f.Add([]byte{7, 0, 7, 128, 3, 1, 129, 3, 2, 130, 3, 3}, byte(0)) // hard-unsat core
	f.Add([]byte{2, 1, 130, 6, 2, 3, 5, 0, 132, 2, 4, 1}, byte(42))  // mixed widths and weights
	f.Fuzz(func(t *testing.T, data []byte, flipSel byte) {
		w := fuzzWCNF(data)
		if w.NumClauses() == 0 {
			t.Skip()
		}
		r, err := Solve(w, Options{Algorithm: AlgoOLL, Certify: true})
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		trueCost, _, feasible := brute.MinCostWCNF(w)
		switch r.Status {
		case Optimal:
			if !feasible || r.Cost != trueCost {
				t.Fatalf("optimizer disagrees with brute force: %v cost=%d, brute %d (feasible=%v)",
					r.Status, r.Cost, trueCost, feasible)
			}
		case Unsatisfiable:
			if feasible {
				t.Fatalf("UNSAT verdict on a feasible instance (brute cost %d)", trueCost)
			}
		default:
			t.Fatalf("tiny instance did not solve: %v", r.Status)
		}
		if r.Certificate == nil {
			t.Fatal("no certificate")
		}
		if err := CheckCertificate(w, r.Certificate); err != nil {
			t.Fatalf("fresh certificate rejected: %v", err)
		}

		// Corrupt one fuzzer-chosen bit.
		mut := append([]byte(nil), r.Certificate...)
		bit := int(flipSel) % (len(mut) * 8)
		mut[bit/8] ^= 1 << (bit % 8)
		cert, err := proof.Decode(mut)
		if err != nil {
			return // rejected at decode: fine
		}
		if err := proof.Check(w, cert); err != nil {
			return // rejected by the checker: fine
		}
		// The corruption survived; it must not have changed the verdict.
		switch cert.Kind {
		case proof.KindOptimal:
			if r.Status != Optimal || cert.Cost != trueCost {
				t.Fatalf("corrupted certificate verified a wrong verdict: kind=%d cost=%d (true %d)",
					cert.Kind, cert.Cost, trueCost)
			}
		case proof.KindUnsat:
			if feasible {
				t.Fatal("corrupted certificate verified UNSAT on a feasible instance")
			}
		}
	})
}
