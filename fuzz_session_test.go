package maxsat

// FuzzSessionVsScratch decodes fuzzer bytes into a session delta script —
// add-hard, add-soft, reweight, set-assumptions, solve — over a tiny
// variable universe and checks every intermediate session solve against
// exhaustive enumeration of the accumulated formula: the delta re-solve
// path (warm solver, verified cache, coalescing) must never change an
// answer.

import (
	"context"
	"testing"

	"repro/internal/brute"
	"repro/internal/cnf"
)

const (
	fuzzSessVars = 5
	fuzzSessOps  = 14
)

// fuzzSessClause decodes width literal bytes (variable modulo the universe,
// sign from the high bit).
func fuzzSessClause(data []byte) Clause {
	c := make(Clause, 0, len(data))
	for _, b := range data {
		v := cnf.Var(b % fuzzSessVars)
		if b >= 128 {
			c = append(c, cnf.NegLit(v))
		} else {
			c = append(c, cnf.PosLit(v))
		}
	}
	return c
}

func FuzzSessionVsScratch(f *testing.F) {
	f.Add([]byte{0, 1, 0, 129, 3, 2, 0, 2, 3})     // two conflicting softs, solve, grow, solve
	f.Add([]byte{2, 1, 2, 3, 1, 130, 3, 4, 66, 3}) // hard + soft + assumption
	f.Add([]byte{1, 5, 0, 3, 20, 1, 3})            // reweight between solves
	f.Add([]byte{4, 0, 4, 200, 3, 4, 3})           // assumption flips around a solve
	f.Fuzz(func(t *testing.T, data []byte) {
		s := NewServer(ServerConfig{Workers: 1})
		defer s.Close()
		sess, err := s.OpenSession(context.Background(), nil, Options{Algorithm: AlgoOLL})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		defer sess.Close()

		acc := NewWCNF(fuzzSessVars) // mirror of the accumulation
		var softIdx []int
		var assume []Lit
		solved := false

		solve := func() {
			t.Helper()
			job, err := sess.Solve(context.Background())
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			res, err := job.Wait(context.Background())
			if err != nil {
				t.Fatalf("wait: %v", err)
			}
			snap := acc.Clone()
			for _, a := range assume {
				snap.AddHard(a)
			}
			want, _, feasible := brute.MinCostWCNF(snap)
			switch {
			case !feasible:
				if res.Status != Unsatisfiable {
					t.Fatalf("session %v on an infeasible accumulation", res.Status)
				}
			case res.Status != Optimal:
				t.Fatalf("session %v cost %d, brute force OPTIMAL %d", res.Status, res.Cost, want)
			case res.Cost != want:
				t.Fatalf("session cost %d, brute force %d\naccumulation: %v",
					res.Cost, want, snap.Clauses)
			}
			if res.Status == Optimal && res.Model != nil {
				if cost, hardOK := snap.CostOf(res.Model); !hardOK || cost != res.Cost {
					t.Fatalf("model does not witness cost %d (hardOK=%v cost=%d)", res.Cost, hardOK, cost)
				}
			}
			solved = true
		}

		i, ops := 0, 0
		for i < len(data) && ops < fuzzSessOps {
			ctl := data[i]
			i++
			ops++
			switch ctl % 5 {
			case 0, 1: // add a soft clause (weight from the control byte)
				width := int(ctl/5)%2 + 1
				if i+width > len(data) {
					break
				}
				c := fuzzSessClause(data[i : i+width])
				i += width
				w := Weight(ctl/25%3) + 1
				if err := sess.AddSoft(w, c...); err != nil {
					t.Fatalf("add soft: %v", err)
				}
				softIdx = append(softIdx, len(acc.Clauses))
				acc.AddSoft(w, c...)
			case 2: // add a hard clause
				width := int(ctl/5)%2 + 1
				if i+width > len(data) {
					break
				}
				c := fuzzSessClause(data[i : i+width])
				i += width
				if err := sess.AddHard(c...); err != nil {
					t.Fatalf("add hard: %v", err)
				}
				acc.AddHard(c...)
			case 3: // solve and compare against brute force
				solve()
			case 4: // reweight or assumption update, steered by the next byte
				if i >= len(data) {
					break
				}
				b := data[i]
				i++
				if b%2 == 0 && len(softIdx) > 0 {
					idx := int(b/2) % len(softIdx)
					w := Weight(b/7%4) + 1
					if err := sess.Reweight(idx, w); err != nil {
						t.Fatalf("reweight: %v", err)
					}
					acc.Clauses[softIdx[idx]].Weight = w
				} else if b%3 == 0 {
					if err := sess.Assume(); err != nil {
						t.Fatalf("clear assumptions: %v", err)
					}
					assume = nil
				} else {
					a := fuzzSessClause([]byte{b})[0]
					if err := sess.Assume(a); err != nil {
						t.Fatalf("assume: %v", err)
					}
					assume = []Lit{a}
				}
			}
		}
		if !solved {
			solve() // every script checks the differential at least once
		}
	})
}
