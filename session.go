package maxsat

import (
	"context"

	"repro/internal/cnf"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/portfolio"
	"repro/internal/serve"
)

// Session is an incremental solving session on a Server: open it with a base
// formula, push deltas (hard clauses, soft clauses, reweights, assumptions),
// and re-solve after each delta at delta cost. A session pins one worker
// slot for its lifetime and keeps a warm solver — learnt clauses, selector
// state, cardinality encodings — across solves, so each re-solve of a grown
// formula resumes where the previous one stopped instead of starting over.
//
// Answers are interchangeable with one-shot answers: every session solve is
// admitted, journaled, verified, cached, and (under Options.Certify)
// certified exactly like a Submit of the accumulated formula — base, plus
// every pushed delta, plus the active assumptions as hard unit clauses. The
// verified-result cache keys on that accumulated formula's fingerprint, so
// a session answer can serve a later one-shot submission of the same
// formula and vice versa.
//
// The warm path is used only when it is sound. Adding hard clauses or
// unit-weight soft clauses is monotone — every retained bound and core
// stays valid — so those re-solves run warm. Reweighting can lower the
// optimum: the first Reweight retires the warm solver for good, and the
// session keeps working through from-scratch solves. A solve with active
// assumptions runs from scratch too (assumptions scope one solve, not the
// retained state), but the warm solver survives it and serves later
// assumption-free solves. Weighted sessions (a weighted base, or a pushed
// soft clause with weight ≠ 1) run every solve from scratch.
//
// Sessions are ephemeral: a server restart forgets open sessions (the
// client sees ErrSessionClosed-equivalent connection errors and reopens),
// but every *certified* answer a session produced survives via the durable
// result store — the reopened session's first solve of an already-certified
// accumulation is a cache hit, observable in ServerStats.SessionHits.
//
// Push and Solve are serialized per session: while a solve is in flight,
// both fail with ErrSessionBusy (wait on the returned Job first). A session
// idle past ServerConfig.SessionIdle is evicted, releasing its slot.
type Session struct {
	s    *serve.Session
	algo Algorithm
}

// Delta is one batch of session mutations (see Session.Push).
type Delta = serve.Delta

// SessionReweight re-weights one already-pushed soft clause, addressed by
// its index in soft-clause order.
type SessionReweight = serve.Reweight

// Session errors.
var (
	// ErrSessionClosed: the session was closed, idle-evicted, or torn down
	// by server shutdown.
	ErrSessionClosed = serve.ErrSessionClosed
	// ErrSessionBusy: a solve is in flight; Push and Solve wait their turn.
	ErrSessionBusy = serve.ErrSessionBusy
	// ErrSessionLimit: ServerConfig.MaxSessions sessions are already open
	// (wrapped with a retry hint — see RetryAfter).
	ErrSessionLimit = serve.ErrSessionLimit
	// ErrSessionsDisabled: ServerConfig.MaxSessions is negative.
	ErrSessionsDisabled = serve.ErrSessionsDisabled
	// ErrBadDelta: a delta referenced a nonexistent soft clause or a
	// non-positive weight.
	ErrBadDelta = serve.ErrBadDelta
)

// OpenSession opens an anonymous-account session (see OpenSessionAs).
func (s *Server) OpenSession(ctx context.Context, base *WCNF, o Options) (*Session, error) {
	return s.OpenSessionAs(ctx, "", base, o)
}

// OpenSessionAs opens a session on client's account with the given base
// formula (nil means start empty) and solve options. The options are fixed
// for the session's lifetime and validated here exactly like Submit — in
// particular, a unit-weight-only algorithm (msu1/2/3, msu4*) rejects a
// weighted base with ErrWeighted, and AlgoAuto resolves against the base,
// so a session that will receive weighted deltas should pick a
// weighted-capable algorithm explicitly. The call blocks until a worker
// slot is free to pin (pass a ctx with a deadline on a busy server); it
// holds one rate token and one unit of the client's in-flight quota for the
// session's lifetime.
func (s *Server) OpenSessionAs(ctx context.Context, client string, base *WCNF, o Options) (*Session, error) {
	if base == nil {
		base = cnf.NewWCNF(0)
	}
	_, algo, err := buildSolver(base, o)
	if err != nil {
		return nil, err
	}
	o.Algorithm = algo
	if algo == AlgoPortfolio {
		if o.Parallelism <= 0 {
			o.Parallelism = portfolio.LineupSize(base.Weighted())
		}
	}
	if o.MemoryBudget == 0 {
		o.MemoryBudget = s.defaultMem
	}
	timeout := o.Timeout
	o.Timeout = 0 // the serving layer owns each solve's deadline
	var payload []byte
	if s.jl != nil {
		payload = encodeWireOptions(o, timeout)
	}
	// The warm engine handles unweighted accumulations for every algorithm:
	// it is an msu3-style incremental climb, whose optimum (the thing
	// sessions answer with) is algorithm-independent. Weighted bases run
	// every solve from scratch.
	var retained opt.Incremental
	if !base.Weighted() {
		retained = core.NewInc(opt.Options{
			MemBytes:            o.MemoryBudget,
			MaxConflictsPerCall: o.MaxConflictsPerCall,
		}, base)
	}
	ss, err := s.s.OpenSession(ctx, serve.SessionSpec{
		Base:     base,
		OptsKey:  optsKey(o, timeout),
		Timeout:  timeout,
		Meta:     algo,
		Client:   client,
		Payload:  payload,
		Solve:    s.sessionSolve(o, algo),
		Retained: retained,
	})
	if err != nil {
		if retained != nil {
			retained.Close()
		}
		return nil, err
	}
	return &Session{s: ss, algo: algo}, nil
}

// sessionSolve builds the session's solve closure: warm path first when the
// serving layer offers the retained engine, from-scratch fallback otherwise
// — with the same degraded-retry profile and certification post-pass as
// one-shot jobs, so session results are bit-for-bit interchangeable.
func (s *Server) sessionSolve(o Options, algo Algorithm) serve.SessionSolveFunc {
	certify := func(ctx context.Context, w *cnf.WCNF, r *opt.Result) {
		if o.Certify && (r.Status == opt.StatusOptimal || r.Status == opt.StatusUnsat) {
			if cert, err := opt.Certify(ctx, w, *r, opt.Options{MemBytes: o.MemoryBudget}); err == nil {
				r.Certificate = cert
			}
		}
	}
	return func(ctx context.Context, w *cnf.WCNF, shared *opt.Bounds, g serve.Grant, retained opt.Incremental) (opt.Result, bool) {
		if retained != nil && g.Attempt == 0 {
			r := retained.SolveDelta(ctx, w, shared)
			if r.Status == opt.StatusOptimal || r.Status == opt.StatusUnsat || ctx.Err() != nil {
				certify(ctx, w, &r)
				return r, true
			}
			// The engine answered Unknown while the solve is still wanted
			// (it poisoned itself, or exhausted a per-call budget): fall
			// through to a from-scratch run of the same snapshot.
		}
		ro := o
		if algo == AlgoPortfolio {
			ro.Parallelism = g.Slots
		}
		if g.Attempt > 0 {
			ro.Parallelism = 1
			ro.ShareClauses = false
			if ro.MemoryBudget > 0 {
				ro.MemoryBudget >>= g.Attempt
			}
		}
		solver, _, err := buildSolver(w, ro)
		if err != nil {
			// Reachable only when deltas made the accumulation weighted under
			// a unit-weight-only algorithm; Session.Push rejects that first.
			return opt.Result{Status: opt.StatusUnknown, Cost: -1}, false
		}
		r := solver.Solve(ctx, w, shared)
		certify(ctx, w, &r)
		return r, false
	}
}

// Session returns an open session by ID (the HTTP daemon's lookup path).
func (s *Server) Session(id uint64) (*Session, bool) {
	ss, ok := s.s.Session(id)
	if !ok {
		return nil, false
	}
	algo, _ := ss.Meta().(Algorithm)
	return &Session{s: ss, algo: algo}, true
}

// ID returns the server-assigned session ID.
func (sess *Session) ID() uint64 { return sess.s.ID() }

// Client returns the owning client's identity.
func (sess *Session) Client() string { return sess.s.Client() }

// Push applies one delta atomically: clause additions, reweights, and the
// assumption update all land, or (on a validation error) none do. Fails
// with ErrSessionBusy while a solve is in flight and with ErrWeighted when
// a weighted soft clause or reweight reaches a unit-weight-only algorithm.
func (sess *Session) Push(d Delta) error {
	if algoRequiresUnitWeights(sess.algo) {
		for _, c := range d.Softs {
			if c.Weight != 1 {
				return ErrWeighted
			}
		}
		for _, rw := range d.Reweights {
			if rw.Weight != 1 {
				return ErrWeighted
			}
		}
	}
	return sess.s.Push(d)
}

// AddHard pushes one hard clause.
func (sess *Session) AddHard(lits ...Lit) error {
	return sess.Push(Delta{Hards: []Clause{Clause(lits)}})
}

// AddSoft pushes one soft clause of the given weight.
func (sess *Session) AddSoft(w Weight, lits ...Lit) error {
	return sess.Push(Delta{Softs: []cnf.WClause{{Clause: Clause(lits), Weight: w}}})
}

// Assume replaces the session's assumption set (no literals clears it).
// Assumptions scope every subsequent Solve: they join the accumulated
// formula as hard unit clauses for that solve's snapshot.
func (sess *Session) Assume(lits ...Lit) error {
	return sess.Push(Delta{Assumptions: lits, SetAssumptions: true})
}

// Reweight changes the weight of the soft-th pushed soft clause (0-based,
// in push order, base softs first). The first reweight permanently retires
// the session's warm solver.
func (sess *Session) Reweight(soft int, w Weight) error {
	return sess.Push(Delta{Reweights: []SessionReweight{{Soft: soft, Weight: w}}})
}

// Solve submits a delta solve of the accumulated formula and returns its
// job handle immediately; Wait on it like any submitted job. Result.Reused
// reports whether the warm solver answered. Only one solve may be in
// flight per session (ErrSessionBusy).
func (sess *Session) Solve(ctx context.Context) (*Job, error) {
	h, err := sess.s.Solve(ctx)
	if err != nil {
		return nil, err
	}
	return &Job{h: h, algo: sess.algo}, nil
}

// Accumulated returns a copy of the formula the next Solve would answer
// for: base plus every pushed delta, with active assumptions as hard units.
func (sess *Session) Accumulated() *WCNF { return sess.s.Accumulated() }

// Counters reports how many solves this session has submitted and how many
// the warm solver answered.
func (sess *Session) Counters() (solves, reused int64) { return sess.s.Counters() }

// Close ends the session, releasing its pinned worker slot, quota unit,
// and warm solver. A solve in flight completes first; its handle stays
// valid. Close is idempotent.
func (sess *Session) Close() { sess.s.Close() }

// algoRequiresUnitWeights reports whether the algorithm rejects weighted
// soft clauses (the paper's unweighted msu family).
func algoRequiresUnitWeights(a Algorithm) bool {
	switch a {
	case AlgoMSU4V1, AlgoMSU4V2, AlgoMSU4, AlgoMSU1, AlgoMSU2, AlgoMSU3:
		return true
	}
	return false
}
