package maxsat

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/opt"
)

// TestShareClausesMatchesFamilies toggles ShareClauses on the generator
// families and asserts the proved optimum is identical either way and
// matches the sequential reference.
func TestShareClausesMatchesFamilies(t *testing.T) {
	insts := []gen.Instance{
		gen.EquivMiter(6),
		gen.EquivMiter(8),
		gen.BMCCounter(3, 8),
		gen.Coloring(7, 8, 20, 3),
		gen.Pigeonhole(4),
		gen.RandomKSAT(3, 14, 3, 5.0),
		gen.ColoringWeighted(3, 8, 20, 3, 5), // weighted line-up shares via wmsu1
	}
	for _, in := range insts {
		off, err := Solve(in.W.Clone(), Options{Algorithm: AlgoPortfolio, Timeout: 30 * time.Second, Parallelism: 4})
		if err != nil {
			t.Fatalf("%s share-off: %v", in.Name, err)
		}
		on, err := Solve(in.W.Clone(), Options{Algorithm: AlgoPortfolio, Timeout: 30 * time.Second, Parallelism: 4, ShareClauses: true})
		if err != nil {
			t.Fatalf("%s share-on: %v", in.Name, err)
		}
		if off.Status != Optimal || on.Status != Optimal {
			t.Fatalf("%s: status off=%v on=%v", in.Name, off.Status, on.Status)
		}
		if off.Cost != on.Cost {
			t.Fatalf("%s: cost drift off=%d on=%d", in.Name, off.Cost, on.Cost)
		}
		if in.KnownCost >= 0 && on.Cost != in.KnownCost {
			t.Fatalf("%s: share-on cost %d, known optimum %d", in.Name, on.Cost, in.KnownCost)
		}
		if !opt.VerifyModel(in.W, opt.Result{Cost: on.Cost, Model: on.Model}) {
			t.Fatalf("%s: share-on model invalid", in.Name)
		}
		if on.Sharing == "" {
			t.Fatalf("%s: sharing summary missing from share-on result", in.Name)
		}
		if off.Sharing != "" || off.ClausesExported != 0 || off.ClausesImported != 0 {
			t.Fatalf("%s: share-off run reports sharing traffic: %q", in.Name, off.Sharing)
		}
	}
}

// TestQuickShareClauses is the quick-check differential of the issue: random
// small instances, optimum with sharing on == optimum with sharing off ==
// sequential msu4-v2, across many seeds.
func TestQuickShareClauses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rounds := 12
	if testing.Short() {
		rounds = 4
	}
	for i := 0; i < rounds; i++ {
		vars := 8 + rng.Intn(12)
		ratio := 4.5 + rng.Float64()*2.5
		in := gen.RandomKSAT(rng.Int63(), vars, 3, ratio)

		ref, err := Solve(in.W.Clone(), Options{Algorithm: AlgoMSU4V2, Timeout: 30 * time.Second})
		if err != nil {
			t.Fatalf("round %d %s ref: %v", i, in.Name, err)
		}
		for _, shareOn := range []bool{false, true} {
			r, err := Solve(in.W.Clone(), Options{
				Algorithm:    AlgoPortfolio,
				Timeout:      30 * time.Second,
				Parallelism:  4,
				ShareClauses: shareOn,
			})
			if err != nil {
				t.Fatalf("round %d %s share=%v: %v", i, in.Name, shareOn, err)
			}
			if r.Status != Optimal || ref.Status != Optimal {
				t.Fatalf("round %d %s share=%v: status %v/%v", i, in.Name, shareOn, r.Status, ref.Status)
			}
			if r.Cost != ref.Cost {
				t.Fatalf("round %d %s share=%v: cost %d, msu4-v2 found %d", i, in.Name, shareOn, r.Cost, ref.Cost)
			}
			if !opt.VerifyModel(in.W, opt.Result{Cost: r.Cost, Model: r.Model}) {
				t.Fatalf("round %d %s share=%v: model invalid", i, in.Name, shareOn)
			}
		}
	}
}
